//! The interface between the simulator and protocol implementations.
//!
//! A [`Firmware`] is an event-driven protocol stack: the simulator calls
//! into it when something happens at its radio (a frame arrives, a
//! transmission completes, a CAD scan finishes, a timer fires) and the
//! firmware responds by issuing commands through the [`Context`] —
//! transmit a frame, start a CAD scan — and by exposing the time at which
//! it next wants to be woken.
//!
//! This is deliberately the same sans-IO shape as the `loramesher` core's
//! native interface, so the adapter between them is a few lines and the
//! protocol logic itself never touches simulator types.

use std::sync::Arc;
use std::time::Duration;

use lora_phy::link::SignalQuality;

use crate::rng::SimRng;
use crate::time::SimTime;

/// Index of a node within a simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A command issued by firmware to its radio.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RadioCommand {
    /// Start transmitting the given frame immediately.
    ///
    /// The radio must be idle; the simulator counts violations instead of
    /// panicking so buggy protocols surface as metrics, not crashes.
    ///
    /// The payload is reference-counted so firmware that retransmits a
    /// cached frame (periodic beacons, cached hellos) shares one buffer
    /// with the medium instead of allocating per transmission.
    Transmit(Arc<[u8]>),
    /// Start a channel-activity-detection scan; completion is reported via
    /// [`Firmware::on_cad_done`].
    StartCad,
}

/// Execution context passed to every firmware callback.
///
/// Collects the commands the firmware issues and gives it access to the
/// virtual clock and its private random stream.
#[derive(Debug)]
pub struct Context<'a> {
    now: SimTime,
    node: NodeId,
    rng: &'a mut SimRng,
    commands: Vec<RadioCommand>,
}

impl<'a> Context<'a> {
    /// Creates a context for one callback invocation. Used by the
    /// simulator and by tests that drive a firmware by hand.
    #[must_use]
    pub fn new(now: SimTime, node: NodeId, rng: &'a mut SimRng) -> Self {
        Self::with_buffer(now, node, rng, Vec::new())
    }

    /// Creates a context that records commands into a caller-supplied
    /// buffer (cleared first), so the simulator can reuse one allocation
    /// across callbacks. Recover the buffer with
    /// [`Context::take_commands`].
    #[must_use]
    pub fn with_buffer(
        now: SimTime,
        node: NodeId,
        rng: &'a mut SimRng,
        mut buffer: Vec<RadioCommand>,
    ) -> Self {
        buffer.clear();
        Context {
            now,
            node,
            rng,
            commands: buffer,
        }
    }

    /// The current simulated time as an offset from the start of the run.
    #[must_use]
    pub fn now(&self) -> Duration {
        self.now.as_duration()
    }

    /// This node's identifier.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The node's private deterministic random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Requests transmission of `frame`.
    ///
    /// Accepts anything convertible into a shared payload: a `Vec<u8>`
    /// (one conversion allocation, as before) or an `Arc<[u8]>` clone
    /// (allocation-free — the path cached-frame firmware should use).
    pub fn transmit(&mut self, frame: impl Into<Arc<[u8]>>) {
        self.commands.push(RadioCommand::Transmit(frame.into()));
    }

    /// Requests a channel-activity-detection scan.
    pub fn start_cad(&mut self) {
        self.commands.push(RadioCommand::StartCad);
    }

    /// Drains the commands issued during this callback.
    #[must_use]
    pub fn take_commands(self) -> Vec<RadioCommand> {
        self.commands
    }
}

/// An event-driven protocol stack hosted by the simulator.
///
/// All callbacks have empty defaults except [`Firmware::on_frame`] and
/// [`Firmware::next_wake`], which every useful protocol needs.
pub trait Firmware {
    /// Called once when the node starts (or restarts after a revive).
    fn on_start(&mut self, ctx: &mut Context) {
        let _ = ctx;
    }

    /// Called when the wake-up time reported by [`Firmware::next_wake`]
    /// is reached.
    fn on_timer(&mut self, ctx: &mut Context) {
        let _ = ctx;
    }

    /// Called when a frame is successfully received.
    fn on_frame(&mut self, bytes: &[u8], quality: SignalQuality, ctx: &mut Context);

    /// Called when a requested transmission completes on air.
    fn on_tx_done(&mut self, ctx: &mut Context) {
        let _ = ctx;
    }

    /// Called when a CAD scan completes; `busy` reports channel activity.
    fn on_cad_done(&mut self, busy: bool, ctx: &mut Context) {
        let _ = (busy, ctx);
    }

    /// Called for an application-level (workload) event tagged `tag`.
    fn on_app(&mut self, tag: u64, ctx: &mut Context) {
        let _ = (tag, ctx);
    }

    /// The next instant (offset from simulation start) at which the
    /// firmware wants [`Firmware::on_timer`] to run, or `None` when idle.
    ///
    /// Queried after every callback; returning an earlier time than a
    /// previously reported one reschedules the wake-up.
    fn next_wake(&self) -> Option<Duration>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_collects_commands_in_order() {
        let mut rng = SimRng::new(1);
        let mut ctx = Context::new(SimTime::from_millis(7), NodeId(3), &mut rng);
        assert_eq!(ctx.now(), Duration::from_millis(7));
        assert_eq!(ctx.node(), NodeId(3));
        ctx.start_cad();
        ctx.transmit(vec![1, 2, 3]);
        let cmds = ctx.take_commands();
        assert_eq!(
            cmds,
            vec![
                RadioCommand::StartCad,
                RadioCommand::Transmit(vec![1, 2, 3].into())
            ]
        );
    }

    #[test]
    fn with_buffer_reuses_and_clears_the_buffer() {
        let mut rng = SimRng::new(1);
        let stale = vec![RadioCommand::StartCad; 3];
        let mut ctx = Context::with_buffer(SimTime::ZERO, NodeId(0), &mut rng, stale);
        let payload: std::sync::Arc<[u8]> = vec![9u8; 4].into();
        ctx.transmit(payload.clone());
        let cmds = ctx.take_commands();
        assert_eq!(cmds, vec![RadioCommand::Transmit(payload)]);
    }

    #[test]
    fn context_rng_is_usable() {
        let mut rng = SimRng::new(1);
        let mut ctx = Context::new(SimTime::ZERO, NodeId(0), &mut rng);
        let a = ctx.rng().next_u64();
        let b = ctx.rng().next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn default_callbacks_are_no_ops() {
        struct Quiet;
        impl Firmware for Quiet {
            fn on_frame(&mut self, _: &[u8], _: SignalQuality, _: &mut Context) {}
            fn next_wake(&self) -> Option<Duration> {
                None
            }
        }
        let mut f = Quiet;
        let mut rng = SimRng::new(1);
        let mut ctx = Context::new(SimTime::ZERO, NodeId(0), &mut rng);
        f.on_start(&mut ctx);
        f.on_timer(&mut ctx);
        f.on_tx_done(&mut ctx);
        f.on_cad_done(true, &mut ctx);
        f.on_app(9, &mut ctx);
        assert!(ctx.take_commands().is_empty());
    }
}
