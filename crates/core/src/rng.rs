//! A tiny deterministic PRNG for protocol jitter and backoff.
//!
//! The protocol needs a few random draws (hello jitter, CSMA backoff).
//! Pulling in an RNG crate would drag entropy into an otherwise pure state
//! machine, so this is a self-contained xorshift64* generator seeded from
//! the node configuration — the same draw sequence on every run, which
//! keeps simulations replayable.

/// A deterministic xorshift64* generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolRng(u64);

impl ProtocolRng {
    /// Creates a generator from a non-zero seed (zero is mapped to a
    /// fixed constant, as xorshift has an all-zero fixed point).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        ProtocolRng(if seed == 0 {
            0x9e37_79b9_7f4a_7c15
        } else {
            seed
        })
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A uniform value in `[0, bound)`; `0` when `bound` is zero.
    ///
    /// Note the stream still advances on a zero bound — the draw
    /// happens either way, so call sequences stay aligned.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        // Multiply-shift; bias is negligible for protocol jitter
        // purposes, and a zero bound yields zero by the same product.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform fraction in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = ProtocolRng::new(5);
        let mut b = ProtocolRng::new(5);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut z = ProtocolRng::new(0);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn range_bounds() {
        let mut r = ProtocolRng::new(7);
        for _ in 0..1000 {
            assert!(r.gen_range(10) < 10);
        }
    }

    #[test]
    fn fraction_in_unit_interval() {
        let mut r = ProtocolRng::new(9);
        for _ in 0..1000 {
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn zero_bound_yields_zero_and_advances() {
        let mut r = ProtocolRng::new(1);
        let mut aligned = ProtocolRng::new(1);
        assert_eq!(r.gen_range(0), 0);
        let _ = aligned.next_u64();
        assert_eq!(r.next_u64(), aligned.next_u64());
    }
}
