//! Node addresses.
//!
//! LoRaMesher identifies nodes with 16-bit addresses derived from the last
//! two bytes of the device MAC. `0xFFFF` is the broadcast address.

use core::fmt;

/// A 16-bit LoRaMesher node address.
///
/// ```
/// use loramesher::Address;
///
/// let a = Address::new(0x1A2B);
/// assert_eq!(a.to_string(), "1A2B");
/// assert!(!a.is_broadcast());
/// assert!(Address::BROADCAST.is_broadcast());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Address(u16);

impl Address {
    /// The broadcast address, `0xFFFF`.
    pub const BROADCAST: Address = Address(0xFFFF);

    /// Creates an address from its 16-bit value.
    #[must_use]
    pub const fn new(value: u16) -> Self {
        Address(value)
    }

    /// Derives an address from a 6-byte MAC, as the LoRaMesher firmware
    /// does (last two bytes, big-endian).
    #[must_use]
    pub fn from_mac(mac: [u8; 6]) -> Self {
        Address(u16::from_be_bytes([mac[4], mac[5]]))
    }

    /// The raw 16-bit value.
    #[must_use]
    pub const fn value(self) -> u16 {
        self.0
    }

    /// Whether this is the broadcast address.
    #[must_use]
    pub const fn is_broadcast(self) -> bool {
        self.0 == 0xFFFF
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04X}", self.0)
    }
}

impl From<u16> for Address {
    fn from(value: u16) -> Self {
        Address(value)
    }
}

impl From<Address> for u16 {
    fn from(a: Address) -> Self {
        a.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_u16() {
        let a = Address::new(0x0042);
        assert_eq!(u16::from(a), 0x0042);
        assert_eq!(Address::from(0x0042u16), a);
        assert_eq!(a.value(), 0x0042);
    }

    #[test]
    fn broadcast_detection() {
        assert!(Address::new(0xFFFF).is_broadcast());
        assert!(!Address::new(0xFFFE).is_broadcast());
        assert_eq!(Address::BROADCAST, Address::new(0xFFFF));
    }

    #[test]
    fn from_mac_uses_last_two_bytes() {
        let a = Address::from_mac([0xDE, 0xAD, 0xBE, 0xEF, 0x12, 0x34]);
        assert_eq!(a.value(), 0x1234);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Address::new(0x00FF).to_string(), "00FF");
    }
}
