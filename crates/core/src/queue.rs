//! The prioritised transmit queue.
//!
//! Outbound frames wait here for the MAC to win the channel. Three
//! priorities keep the protocol responsive under load: acknowledgements
//! first (a blocked ACK stalls a whole reliable transfer), then routing
//! traffic (a late Hello ages routes across the mesh), then data. Within
//! a priority the queue is FIFO. The queue is bounded; when full, an
//! arriving frame is refused — the protocol surfaces that to the
//! application as [`crate::SendError::QueueFull`] — except that a
//! higher-priority frame may evict the newest lowest-priority one.

use alloc::collections::VecDeque;

use crate::packet::{Packet, PacketKind};

/// Transmission priority classes, highest first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Reliable-transfer control traffic (Ack/Lost).
    Control,
    /// Routing broadcasts (Hello).
    Routing,
    /// Application data (Data/Sync/Frag).
    Data,
}

impl Priority {
    /// The priority class a packet kind belongs to.
    #[must_use]
    pub fn of(kind: PacketKind) -> Self {
        match kind {
            PacketKind::Ack | PacketKind::Lost => Priority::Control,
            PacketKind::Hello => Priority::Routing,
            PacketKind::Data | PacketKind::Sync | PacketKind::Frag => Priority::Data,
        }
    }
}

/// A bounded three-level priority FIFO of outbound packets.
#[derive(Clone, Debug)]
pub struct TxQueue {
    levels: [VecDeque<Packet>; 3],
    capacity: usize,
    dropped: u64,
}

impl TxQueue {
    /// Creates a queue holding at most `capacity` packets in total.
    /// A zero capacity is clamped to one — a queue that can hold
    /// nothing would silently drop every packet.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TxQueue {
            levels: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            capacity,
            dropped: 0,
        }
    }

    fn level(p: Priority) -> usize {
        match p {
            Priority::Control => 0,
            Priority::Routing => 1,
            Priority::Data => 2,
        }
    }

    /// Total queued packets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.levels.iter().map(VecDeque::len).sum()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.levels.iter().all(VecDeque::is_empty)
    }

    /// Packets dropped or refused so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Enqueues a packet at the priority of its kind.
    ///
    /// Returns `false` when the queue is full and nothing lower-priority
    /// could be evicted.
    #[must_use]
    pub fn push(&mut self, packet: Packet) -> bool {
        let prio = Priority::of(packet.kind());
        let idx = Self::level(prio);
        if self.len() >= self.capacity {
            // Try to evict the newest strictly-lower-priority packet.
            let victim = (idx + 1..3).rev().find(|&l| !self.levels[l].is_empty());
            match victim {
                Some(l) => {
                    self.levels[l].pop_back();
                    self.dropped += 1;
                }
                None => {
                    self.dropped += 1;
                    return false;
                }
            }
        }
        self.levels[idx].push_back(packet);
        true
    }

    /// The packet that would be sent next, without removing it.
    #[must_use]
    pub fn peek(&self) -> Option<&Packet> {
        self.levels.iter().find_map(|l| l.front())
    }

    /// Removes and returns the highest-priority, oldest packet.
    pub fn pop(&mut self) -> Option<Packet> {
        self.levels.iter_mut().find_map(VecDeque::pop_front)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Address;
    use crate::packet::Forwarding;

    fn data(id: u8) -> Packet {
        Packet::Data {
            dst: Address::new(2),
            src: Address::new(1),
            id,
            fwd: Forwarding {
                via: Address::new(2),
                ttl: 5,
            },
            payload: vec![id],
        }
    }

    fn hello(id: u8) -> Packet {
        Packet::Hello {
            src: Address::new(1),
            id,
            role: 0,
            entries: vec![],
        }
    }

    fn ack(id: u8) -> Packet {
        Packet::Ack {
            dst: Address::new(2),
            src: Address::new(1),
            id,
            fwd: Forwarding {
                via: Address::new(2),
                ttl: 5,
            },
            seq: 0,
            index: 0,
        }
    }

    #[test]
    fn priority_mapping() {
        assert_eq!(Priority::of(PacketKind::Ack), Priority::Control);
        assert_eq!(Priority::of(PacketKind::Lost), Priority::Control);
        assert_eq!(Priority::of(PacketKind::Hello), Priority::Routing);
        assert_eq!(Priority::of(PacketKind::Data), Priority::Data);
        assert_eq!(Priority::of(PacketKind::Sync), Priority::Data);
        assert_eq!(Priority::of(PacketKind::Frag), Priority::Data);
        assert!(Priority::Control < Priority::Data);
    }

    #[test]
    fn pops_by_priority_then_fifo() {
        let mut q = TxQueue::new(10);
        assert!(q.push(data(1)));
        assert!(q.push(data(2)));
        assert!(q.push(hello(3)));
        assert!(q.push(ack(4)));
        let order: Vec<u8> = std::iter::from_fn(|| q.pop()).map(|p| p.id()).collect();
        assert_eq!(order, vec![4, 3, 1, 2]);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = TxQueue::new(4);
        assert!(q.peek().is_none());
        assert!(q.push(data(1)));
        assert!(q.push(ack(2)));
        assert_eq!(q.peek().unwrap().id(), 2);
        assert_eq!(q.pop().unwrap().id(), 2);
        assert_eq!(q.peek().unwrap().id(), 1);
    }

    #[test]
    fn full_queue_refuses_data() {
        let mut q = TxQueue::new(2);
        assert!(q.push(data(1)));
        assert!(q.push(data(2)));
        assert!(!q.push(data(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.dropped(), 1);
    }

    #[test]
    fn control_evicts_newest_data_when_full() {
        let mut q = TxQueue::new(2);
        assert!(q.push(data(1)));
        assert!(q.push(data(2)));
        assert!(q.push(ack(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.dropped(), 1);
        // The evicted packet is the newest data (id 2).
        let order: Vec<u8> = std::iter::from_fn(|| q.pop()).map(|p| p.id()).collect();
        assert_eq!(order, vec![3, 1]);
    }

    #[test]
    fn control_never_evicts_control() {
        let mut q = TxQueue::new(2);
        assert!(q.push(ack(1)));
        assert!(q.push(ack(2)));
        assert!(!q.push(ack(3)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut q = TxQueue::new(0);
        assert!(q.push(data(1)));
        assert!(!q.push(data(2)));
    }
}
