//! Error types.

use core::fmt;

use crate::addr::Address;

/// Errors arising when decoding a frame from the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The frame is shorter than its mandatory header.
    Truncated {
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// The packet-type byte is not a known [`crate::PacketKind`].
    UnknownKind(u8),
    /// The header's payload length disagrees with the frame length.
    LengthMismatch {
        /// Length declared in the header.
        declared: usize,
        /// Length actually present.
        actual: usize,
    },
    /// A routing packet's payload is not a whole number of entries.
    MalformedRoutingPayload,
    /// The encoded frame would exceed the LoRa PHY payload limit.
    FrameTooLarge(usize),
    /// A fixed-size body carries bytes past its defined end.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, got } => {
                write!(f, "truncated frame: need {needed} bytes, got {got}")
            }
            CodecError::UnknownKind(k) => write!(f, "unknown packet kind 0x{k:02X}"),
            CodecError::LengthMismatch { declared, actual } => {
                write!(
                    f,
                    "length mismatch: header declares {declared}, frame has {actual}"
                )
            }
            CodecError::MalformedRoutingPayload => write!(f, "malformed routing payload"),
            CodecError::FrameTooLarge(n) => {
                write!(f, "encoded frame of {n} bytes exceeds the PHY limit")
            }
            CodecError::TrailingBytes(n) => {
                write!(f, "{n} unexpected byte(s) after a fixed-size body")
            }
        }
    }
}

#[cfg(feature = "std")]
impl std::error::Error for CodecError {}

/// Errors returned when an application submits traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendError {
    /// No route to the destination is known.
    NoRoute(Address),
    /// The payload exceeds the single-frame limit (use the reliable
    /// large-payload service instead).
    PayloadTooLarge {
        /// Bytes submitted.
        len: usize,
        /// Maximum datagram payload.
        max: usize,
    },
    /// The transmit queue is full.
    QueueFull,
    /// The payload is empty.
    EmptyPayload,
    /// A reliable transfer to this destination is already in progress.
    TransferInProgress(Address),
    /// Reliable transfers cannot be broadcast.
    BroadcastUnsupported,
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::NoRoute(a) => write!(f, "no route to {a}"),
            SendError::PayloadTooLarge { len, max } => {
                write!(
                    f,
                    "payload of {len} bytes exceeds the {max}-byte datagram limit"
                )
            }
            SendError::QueueFull => write!(f, "transmit queue full"),
            SendError::EmptyPayload => write!(f, "payload is empty"),
            SendError::TransferInProgress(a) => {
                write!(f, "a reliable transfer to {a} is already in progress")
            }
            SendError::BroadcastUnsupported => {
                write!(f, "reliable transfers cannot be broadcast")
            }
        }
    }
}

#[cfg(feature = "std")]
impl std::error::Error for SendError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_errors_display() {
        assert_eq!(
            CodecError::Truncated { needed: 7, got: 3 }.to_string(),
            "truncated frame: need 7 bytes, got 3"
        );
        assert_eq!(
            CodecError::UnknownKind(0xAB).to_string(),
            "unknown packet kind 0xAB"
        );
        assert!(CodecError::MalformedRoutingPayload
            .to_string()
            .contains("routing"));
    }

    #[test]
    fn send_errors_display() {
        assert_eq!(
            SendError::NoRoute(Address::new(0x0009)).to_string(),
            "no route to 0009"
        );
        assert!(SendError::PayloadTooLarge { len: 500, max: 200 }
            .to_string()
            .contains("500"));
        assert!(SendError::QueueFull.to_string().contains("full"));
    }

    #[test]
    fn errors_implement_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&CodecError::UnknownKind(1));
        takes_err(&SendError::QueueFull);
    }
}
