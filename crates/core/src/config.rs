//! Node configuration.

use core::time::Duration;

use lora_phy::modulation::LoRaModulation;
use lora_phy::region::Region;

use crate::addr::Address;
use crate::codec::MAX_DATA_PAYLOAD;

/// Complete configuration of a [`crate::MeshNode`].
///
/// Construct with [`MeshConfig::builder`]; the defaults follow the
/// LoRaMesher firmware (2-minute hellos, 10-minute route timeout, SF7
/// radio profile, EU868 1 % duty cycle).
#[derive(Clone, Debug)]
pub struct MeshConfig {
    /// This node's address.
    pub address: Address,
    /// Role bits advertised in Hello broadcasts (0 = plain node).
    pub role: u8,
    /// The radio profile, used for airtime/duty-cycle arithmetic.
    pub modulation: LoRaModulation,
    /// Regulatory region providing the duty-cycle limit.
    pub region: Region,
    /// Interval between routing broadcasts (jittered ±10 %).
    pub hello_interval: Duration,
    /// Age after which an unrefreshed route is purged.
    pub route_timeout: Duration,
    /// Initial TTL of originated unicast packets.
    pub max_ttl: u8,
    /// Maximum queued outbound frames.
    pub tx_queue_capacity: usize,
    /// CSMA backoff slot length.
    pub backoff_slot: Duration,
    /// Maximum CSMA backoff exponent (window = `2^exponent` slots).
    pub max_backoff_exponent: u32,
    /// CAD retries before an outbound frame is dropped as undeliverable.
    pub max_cad_retries: u32,
    /// Largest application payload accepted per datagram frame.
    pub max_datagram_payload: usize,
    /// Acknowledgement timeout of the reliable transfer protocol.
    pub reliable_timeout: Duration,
    /// Retransmissions before a reliable transfer is aborted.
    pub reliable_max_retries: u32,
    /// Idle time after which a half-finished inbound transfer is dropped.
    pub reassembly_timeout: Duration,
    /// Seed of the protocol's jitter/backoff randomness (defaults to the
    /// node address so every node draws a distinct sequence).
    pub seed: u64,
    /// Listen-before-talk (CAD + backoff). Disabling it degrades the MAC
    /// to pure ALOHA — an ablation knob, not a deployment option.
    pub csma: bool,
    /// Randomise hello timing (±10 % interval, randomised first hello).
    /// Disabling it synchronises co-booted nodes — an ablation knob.
    pub hello_jitter: bool,
    /// Route-selection policy (hop count only by default; optionally
    /// SNR-tie-broken, the LoRaMesher v2 extension).
    pub routing_policy: crate::routing::RoutingPolicy,
}

impl MeshConfig {
    /// Starts building a configuration for `address`.
    #[must_use]
    pub fn builder(address: Address) -> MeshConfigBuilder {
        MeshConfigBuilder {
            config: MeshConfig {
                address,
                role: 0,
                modulation: LoRaModulation::default(),
                region: Region::Eu868,
                hello_interval: Duration::from_secs(120),
                route_timeout: Duration::from_secs(600),
                max_ttl: 10,
                tx_queue_capacity: 32,
                backoff_slot: Duration::from_millis(100),
                max_backoff_exponent: 6,
                max_cad_retries: 16,
                max_datagram_payload: MAX_DATA_PAYLOAD,
                reliable_timeout: Duration::from_secs(8),
                reliable_max_retries: 5,
                reassembly_timeout: Duration::from_secs(120),
                seed: u64::from(address.value()),
                csma: true,
                hello_jitter: true,
                routing_policy: crate::routing::RoutingPolicy::default(),
            },
        }
    }
}

/// Builder for [`MeshConfig`].
///
/// ```
/// use loramesher::{Address, MeshConfig};
/// use core::time::Duration;
///
/// let cfg = MeshConfig::builder(Address::new(7))
///     .hello_interval(Duration::from_secs(60))
///     .max_ttl(5)
///     .build();
/// assert_eq!(cfg.hello_interval, Duration::from_secs(60));
/// assert_eq!(cfg.max_ttl, 5);
/// ```
#[derive(Clone, Debug)]
pub struct MeshConfigBuilder {
    config: MeshConfig,
}

impl MeshConfigBuilder {
    /// Sets the role bits advertised by this node.
    #[must_use]
    pub fn role(mut self, role: u8) -> Self {
        self.config.role = role;
        self
    }

    /// Sets the radio profile.
    #[must_use]
    pub fn modulation(mut self, m: LoRaModulation) -> Self {
        self.config.modulation = m;
        self
    }

    /// Sets the regulatory region.
    #[must_use]
    pub fn region(mut self, r: Region) -> Self {
        self.config.region = r;
        self
    }

    /// Sets the routing broadcast interval.
    ///
    /// # Panics
    ///
    /// Panics if the interval is zero.
    #[must_use]
    pub fn hello_interval(mut self, d: Duration) -> Self {
        assert!(!d.is_zero(), "hello interval must be non-zero");
        self.config.hello_interval = d;
        self
    }

    /// Sets the route timeout.
    ///
    /// # Panics
    ///
    /// Panics if the timeout is zero.
    #[must_use]
    pub fn route_timeout(mut self, d: Duration) -> Self {
        assert!(!d.is_zero(), "route timeout must be non-zero");
        self.config.route_timeout = d;
        self
    }

    /// Sets the initial TTL of originated packets (clamped to ≥ 1).
    #[must_use]
    pub fn max_ttl(mut self, ttl: u8) -> Self {
        self.config.max_ttl = ttl.max(1);
        self
    }

    /// Sets the transmit queue capacity (clamped to ≥ 1).
    #[must_use]
    pub fn tx_queue_capacity(mut self, n: usize) -> Self {
        self.config.tx_queue_capacity = n.max(1);
        self
    }

    /// Sets the CSMA backoff slot.
    #[must_use]
    pub fn backoff_slot(mut self, d: Duration) -> Self {
        self.config.backoff_slot = d;
        self
    }

    /// Sets the maximum CSMA backoff exponent.
    #[must_use]
    pub fn max_backoff_exponent(mut self, e: u32) -> Self {
        self.config.max_backoff_exponent = e;
        self
    }

    /// Sets the CAD retry limit.
    #[must_use]
    pub fn max_cad_retries(mut self, n: u32) -> Self {
        self.config.max_cad_retries = n;
        self
    }

    /// Restricts the per-frame datagram payload (clamped to the PHY max).
    #[must_use]
    pub fn max_datagram_payload(mut self, n: usize) -> Self {
        self.config.max_datagram_payload = n.clamp(1, MAX_DATA_PAYLOAD);
        self
    }

    /// Sets the reliable-transfer acknowledgement timeout.
    #[must_use]
    pub fn reliable_timeout(mut self, d: Duration) -> Self {
        self.config.reliable_timeout = d;
        self
    }

    /// Sets the reliable-transfer retry limit.
    #[must_use]
    pub fn reliable_max_retries(mut self, n: u32) -> Self {
        self.config.reliable_max_retries = n;
        self
    }

    /// Sets the inbound reassembly timeout.
    #[must_use]
    pub fn reassembly_timeout(mut self, d: Duration) -> Self {
        self.config.reassembly_timeout = d;
        self
    }

    /// Overrides the protocol randomness seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Enables or disables listen-before-talk (ablation).
    #[must_use]
    pub fn csma(mut self, on: bool) -> Self {
        self.config.csma = on;
        self
    }

    /// Enables or disables hello timing jitter (ablation).
    #[must_use]
    pub fn hello_jitter(mut self, on: bool) -> Self {
        self.config.hello_jitter = on;
        self
    }

    /// Sets the route-selection policy.
    #[must_use]
    pub fn routing_policy(mut self, policy: crate::routing::RoutingPolicy) -> Self {
        self.config.routing_policy = policy;
        self
    }

    /// Finishes the builder.
    #[must_use]
    pub fn build(self) -> MeshConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_firmware() {
        let c = MeshConfig::builder(Address::new(0x0042)).build();
        assert_eq!(c.hello_interval, Duration::from_secs(120));
        assert_eq!(c.route_timeout, Duration::from_secs(600));
        assert_eq!(c.region, Region::Eu868);
        assert_eq!(c.seed, 0x42);
        assert_eq!(c.max_datagram_payload, MAX_DATA_PAYLOAD);
    }

    #[test]
    fn builder_overrides() {
        let c = MeshConfig::builder(Address::new(1))
            .role(2)
            .max_ttl(0) // clamped to 1
            .tx_queue_capacity(0) // clamped to 1
            .max_datagram_payload(10_000) // clamped to PHY max
            .seed(99)
            .build();
        assert_eq!(c.role, 2);
        assert_eq!(c.max_ttl, 1);
        assert_eq!(c.tx_queue_capacity, 1);
        assert_eq!(c.max_datagram_payload, MAX_DATA_PAYLOAD);
        assert_eq!(c.seed, 99);
    }

    #[test]
    #[should_panic(expected = "hello interval")]
    fn zero_hello_interval_rejected() {
        let _ = MeshConfig::builder(Address::new(1)).hello_interval(Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "route timeout")]
    fn zero_route_timeout_rejected() {
        let _ = MeshConfig::builder(Address::new(1)).route_timeout(Duration::ZERO);
    }
}
