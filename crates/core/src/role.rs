//! Node roles.
//!
//! LoRaMesher advertises a role byte with every node so applications can
//! discover infrastructure through the mesh — most importantly gateways
//! (nodes bridging the mesh to the Internet), which the routing table
//! then lets any node address without knowing the topology.

use alloc::vec::Vec;

use crate::addr::Address;
use crate::routing::{Route, RoutingTable};

/// Role bit flags carried in Hello broadcasts.
///
/// A plain `u8` on the wire; these constants name the assigned bits.
/// Undefined bits are application-specific and forwarded untouched.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Role(u8);

impl Role {
    /// No special role.
    pub const NONE: Role = Role(0);
    /// The node bridges the mesh to an external network.
    pub const GATEWAY: Role = Role(0b0000_0001);
    /// The node is a data collector/sink for sensor reports.
    pub const COLLECTOR: Role = Role(0b0000_0010);

    /// Builds a role from raw bits.
    #[must_use]
    pub const fn from_bits(bits: u8) -> Self {
        Role(bits)
    }

    /// The raw wire byte.
    #[must_use]
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Whether every bit of `other` is set in `self`.
    #[must_use]
    pub const fn contains(self, other: Role) -> bool {
        self.0 & other.0 == other.0
    }

    /// The union of two roles.
    #[must_use]
    pub const fn union(self, other: Role) -> Role {
        Role(self.0 | other.0)
    }
}

impl core::ops::BitOr for Role {
    type Output = Role;
    fn bitor(self, rhs: Role) -> Role {
        self.union(rhs)
    }
}

/// Role-aware queries over a routing table.
pub trait RoleQueries {
    /// All known nodes advertising every bit of `role`, nearest first.
    fn nodes_with_role(&self, role: Role) -> Vec<&Route>;

    /// The nearest known gateway, if any.
    fn closest_gateway(&self) -> Option<Address>;
}

impl RoleQueries for RoutingTable {
    fn nodes_with_role(&self, role: Role) -> Vec<&Route> {
        let mut matches: Vec<&Route> = self
            .routes()
            .filter(|r| Role::from_bits(r.role).contains(role))
            .collect();
        matches.sort_by_key(|r| (r.metric, r.destination));
        matches
    }

    fn closest_gateway(&self) -> Option<Address> {
        self.nodes_with_role(Role::GATEWAY)
            .first()
            .map(|r| r.destination)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::RouteEntry;
    use std::time::Duration;

    const ME: Address = Address::new(1);

    #[test]
    fn role_bit_operations() {
        let r = Role::GATEWAY | Role::COLLECTOR;
        assert!(r.contains(Role::GATEWAY));
        assert!(r.contains(Role::COLLECTOR));
        assert!(r.contains(Role::NONE));
        assert!(!Role::GATEWAY.contains(Role::COLLECTOR));
        assert_eq!(r.bits(), 0b11);
        assert_eq!(Role::from_bits(0b11), r);
    }

    #[test]
    fn closest_gateway_prefers_lowest_metric() {
        let mut table = RoutingTable::new();
        let now = Duration::from_secs(1);
        // A gateway 3 hops away via neighbour 2...
        table.apply_hello(
            ME,
            Address::new(2),
            0,
            &[RouteEntry {
                address: Address::new(10),
                metric: 2,
                role: Role::GATEWAY.bits(),
            }],
            0.0,
            now,
        );
        assert_eq!(table.closest_gateway(), Some(Address::new(10)));
        // ...then a direct neighbour that is itself a gateway.
        table.apply_hello(ME, Address::new(3), Role::GATEWAY.bits(), &[], 0.0, now);
        assert_eq!(table.closest_gateway(), Some(Address::new(3)));
    }

    #[test]
    fn nodes_with_role_filters_and_orders() {
        let mut table = RoutingTable::new();
        let now = Duration::from_secs(1);
        table.apply_hello(
            ME,
            Address::new(2),
            0,
            &[
                RouteEntry {
                    address: Address::new(20),
                    metric: 3,
                    role: Role::COLLECTOR.bits(),
                },
                RouteEntry {
                    address: Address::new(21),
                    metric: 1,
                    role: Role::COLLECTOR.bits(),
                },
                RouteEntry {
                    address: Address::new(22),
                    metric: 2,
                    role: 0,
                },
            ],
            0.0,
            now,
        );
        let collectors = table.nodes_with_role(Role::COLLECTOR);
        assert_eq!(collectors.len(), 2);
        assert_eq!(collectors[0].destination, Address::new(21)); // metric 2
        assert_eq!(collectors[1].destination, Address::new(20)); // metric 4
        assert!(table.closest_gateway().is_none());
    }

    #[test]
    fn none_role_matches_everything() {
        let mut table = RoutingTable::new();
        table.heard_from(Address::new(5), 0.0, Duration::from_secs(1));
        assert_eq!(table.nodes_with_role(Role::NONE).len(), 1);
    }
}
