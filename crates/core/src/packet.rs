//! The packet types of the LoRaMesher protocol.
//!
//! Six packet kinds cover the whole protocol:
//!
//! | kind  | purpose                                              |
//! |-------|------------------------------------------------------|
//! | Hello | periodic routing-table broadcast (distance vector)   |
//! | Data  | single-frame application datagram, forwarded via `via` |
//! | Sync  | opens a reliable large-payload transfer              |
//! | Frag  | one fragment of a reliable transfer                  |
//! | Ack   | acknowledges the Sync or one fragment                |
//! | Lost  | receiver-side request to resend missing fragments    |
//!
//! All packets share a 7-byte header (`dst`, `src`, kind, id, length);
//! unicast packets add a 3-byte forwarding extension (`via` next hop and a
//! TTL). See [`crate::codec`] for the exact wire layout.

use alloc::vec::Vec;
use core::fmt;

use crate::addr::Address;

/// Packet type discriminants as they appear on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum PacketKind {
    /// Routing-table broadcast.
    Hello = 0x01,
    /// Application datagram.
    Data = 0x02,
    /// Reliable-transfer handshake.
    Sync = 0x03,
    /// Reliable-transfer fragment.
    Frag = 0x04,
    /// Reliable-transfer acknowledgement.
    Ack = 0x05,
    /// Reliable-transfer retransmission request.
    Lost = 0x06,
}

impl PacketKind {
    /// Parses a wire discriminant.
    #[must_use]
    pub fn from_wire(byte: u8) -> Option<Self> {
        match byte {
            0x01 => Some(PacketKind::Hello),
            0x02 => Some(PacketKind::Data),
            0x03 => Some(PacketKind::Sync),
            0x04 => Some(PacketKind::Frag),
            0x05 => Some(PacketKind::Ack),
            0x06 => Some(PacketKind::Lost),
            _ => None,
        }
    }

    /// The wire discriminant (inverse of [`PacketKind::from_wire`]).
    #[must_use]
    pub fn wire(self) -> u8 {
        match self {
            PacketKind::Hello => 0x01,
            PacketKind::Data => 0x02,
            PacketKind::Sync => 0x03,
            PacketKind::Frag => 0x04,
            PacketKind::Ack => 0x05,
            PacketKind::Lost => 0x06,
        }
    }
}

impl fmt::Display for PacketKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PacketKind::Hello => "HELLO",
            PacketKind::Data => "DATA",
            PacketKind::Sync => "SYNC",
            PacketKind::Frag => "FRAG",
            PacketKind::Ack => "ACK",
            PacketKind::Lost => "LOST",
        };
        f.write_str(name)
    }
}

/// One routing-table entry as carried in a Hello broadcast.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouteEntry {
    /// The advertised destination.
    pub address: Address,
    /// Hop-count metric to reach it from the advertiser.
    pub metric: u8,
    /// Role bits of the destination (e.g. gateway).
    pub role: u8,
}

/// Fragment index used in an [`Packet::Ack`] that acknowledges the Sync
/// handshake rather than a fragment.
pub const SYNC_ACK_INDEX: u16 = 0xFFFF;

/// Forwarding fields shared by all unicast packets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Forwarding {
    /// The next hop that should relay this packet.
    pub via: Address,
    /// Remaining hop budget; decremented at each relay.
    pub ttl: u8,
}

/// A decoded LoRaMesher packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Packet {
    /// Periodic routing broadcast: the sender's routing table.
    Hello {
        /// The advertising node.
        src: Address,
        /// The sender's packet id.
        id: u8,
        /// Role bits of the advertising node itself.
        role: u8,
        /// The advertised routes (the sender's table).
        entries: Vec<RouteEntry>,
    },
    /// A single-frame application datagram.
    Data {
        /// Final destination.
        dst: Address,
        /// Originating node.
        src: Address,
        /// The originator's packet id.
        id: u8,
        /// Forwarding state.
        fwd: Forwarding,
        /// Application payload.
        payload: Vec<u8>,
    },
    /// Opens a reliable transfer of `total_len` bytes in `frag_count`
    /// fragments.
    Sync {
        /// Final destination.
        dst: Address,
        /// Originating node.
        src: Address,
        /// The originator's packet id.
        id: u8,
        /// Forwarding state.
        fwd: Forwarding,
        /// Transfer sequence id (per originator).
        seq: u8,
        /// Number of fragments to follow.
        frag_count: u16,
        /// Total payload length in bytes.
        total_len: u32,
    },
    /// One fragment of a reliable transfer.
    Frag {
        /// Final destination.
        dst: Address,
        /// Originating node.
        src: Address,
        /// The originator's packet id.
        id: u8,
        /// Forwarding state.
        fwd: Forwarding,
        /// Transfer sequence id.
        seq: u8,
        /// Zero-based fragment index.
        index: u16,
        /// Fragment bytes.
        data: Vec<u8>,
    },
    /// Acknowledges the Sync ([`SYNC_ACK_INDEX`]) or fragment `index`.
    Ack {
        /// Final destination (the transfer's sender).
        dst: Address,
        /// Originating node (the transfer's receiver).
        src: Address,
        /// The originator's packet id.
        id: u8,
        /// Forwarding state.
        fwd: Forwarding,
        /// Transfer sequence id.
        seq: u8,
        /// Acknowledged fragment index, or [`SYNC_ACK_INDEX`].
        index: u16,
    },
    /// Requests retransmission of the listed fragments.
    Lost {
        /// Final destination (the transfer's sender).
        dst: Address,
        /// Originating node (the transfer's receiver).
        src: Address,
        /// The originator's packet id.
        id: u8,
        /// Forwarding state.
        fwd: Forwarding,
        /// Transfer sequence id.
        seq: u8,
        /// Missing fragment indices.
        missing: Vec<u16>,
    },
}

impl Packet {
    /// The packet's kind.
    #[must_use]
    pub fn kind(&self) -> PacketKind {
        match self {
            Packet::Hello { .. } => PacketKind::Hello,
            Packet::Data { .. } => PacketKind::Data,
            Packet::Sync { .. } => PacketKind::Sync,
            Packet::Frag { .. } => PacketKind::Frag,
            Packet::Ack { .. } => PacketKind::Ack,
            Packet::Lost { .. } => PacketKind::Lost,
        }
    }

    /// The originating node.
    #[must_use]
    pub fn src(&self) -> Address {
        match *self {
            Packet::Hello { src, .. }
            | Packet::Data { src, .. }
            | Packet::Sync { src, .. }
            | Packet::Frag { src, .. }
            | Packet::Ack { src, .. }
            | Packet::Lost { src, .. } => src,
        }
    }

    /// The final destination ([`Address::BROADCAST`] for Hello).
    #[must_use]
    pub fn dst(&self) -> Address {
        match *self {
            Packet::Hello { .. } => Address::BROADCAST,
            Packet::Data { dst, .. }
            | Packet::Sync { dst, .. }
            | Packet::Frag { dst, .. }
            | Packet::Ack { dst, .. }
            | Packet::Lost { dst, .. } => dst,
        }
    }

    /// The originator's packet id.
    #[must_use]
    pub fn id(&self) -> u8 {
        match *self {
            Packet::Hello { id, .. }
            | Packet::Data { id, .. }
            | Packet::Sync { id, .. }
            | Packet::Frag { id, .. }
            | Packet::Ack { id, .. }
            | Packet::Lost { id, .. } => id,
        }
    }

    /// The forwarding fields of a unicast packet (`None` for Hello).
    #[must_use]
    pub fn forwarding(&self) -> Option<Forwarding> {
        match *self {
            Packet::Hello { .. } => None,
            Packet::Data { fwd, .. }
            | Packet::Sync { fwd, .. }
            | Packet::Frag { fwd, .. }
            | Packet::Ack { fwd, .. }
            | Packet::Lost { fwd, .. } => Some(fwd),
        }
    }

    /// Mutable access to the forwarding fields (`None` for Hello).
    pub fn forwarding_mut(&mut self) -> Option<&mut Forwarding> {
        match self {
            Packet::Hello { .. } => None,
            Packet::Data { fwd, .. }
            | Packet::Sync { fwd, .. }
            | Packet::Frag { fwd, .. }
            | Packet::Ack { fwd, .. }
            | Packet::Lost { fwd, .. } => Some(fwd),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fwd() -> Forwarding {
        Forwarding {
            via: Address::new(2),
            ttl: 8,
        }
    }

    #[test]
    fn kind_round_trips_wire_byte() {
        for kind in [
            PacketKind::Hello,
            PacketKind::Data,
            PacketKind::Sync,
            PacketKind::Frag,
            PacketKind::Ack,
            PacketKind::Lost,
        ] {
            assert_eq!(PacketKind::from_wire(kind as u8), Some(kind));
        }
        assert_eq!(PacketKind::from_wire(0x00), None);
        assert_eq!(PacketKind::from_wire(0x07), None);
    }

    #[test]
    fn accessors_cover_all_variants() {
        let src = Address::new(10);
        let dst = Address::new(20);
        let packets = [
            Packet::Hello {
                src,
                id: 1,
                role: 0,
                entries: vec![],
            },
            Packet::Data {
                dst,
                src,
                id: 2,
                fwd: fwd(),
                payload: vec![1],
            },
            Packet::Sync {
                dst,
                src,
                id: 3,
                fwd: fwd(),
                seq: 1,
                frag_count: 4,
                total_len: 700,
            },
            Packet::Frag {
                dst,
                src,
                id: 4,
                fwd: fwd(),
                seq: 1,
                index: 2,
                data: vec![9],
            },
            Packet::Ack {
                dst,
                src,
                id: 5,
                fwd: fwd(),
                seq: 1,
                index: SYNC_ACK_INDEX,
            },
            Packet::Lost {
                dst,
                src,
                id: 6,
                fwd: fwd(),
                seq: 1,
                missing: vec![3],
            },
        ];
        for (i, p) in packets.iter().enumerate() {
            assert_eq!(p.src(), src);
            assert_eq!(p.id(), i as u8 + 1);
            if matches!(p, Packet::Hello { .. }) {
                assert_eq!(p.dst(), Address::BROADCAST);
                assert!(p.forwarding().is_none());
            } else {
                assert_eq!(p.dst(), dst);
                assert_eq!(p.forwarding(), Some(fwd()));
            }
        }
    }

    #[test]
    fn forwarding_mut_rewrites_via() {
        let mut p = Packet::Data {
            dst: Address::new(20),
            src: Address::new(10),
            id: 0,
            fwd: fwd(),
            payload: vec![],
        };
        let f = p.forwarding_mut().unwrap();
        f.via = Address::new(99);
        f.ttl -= 1;
        assert_eq!(
            p.forwarding(),
            Some(Forwarding {
                via: Address::new(99),
                ttl: 7
            })
        );
        let mut hello = Packet::Hello {
            src: Address::new(1),
            id: 0,
            role: 0,
            entries: vec![],
        };
        assert!(hello.forwarding_mut().is_none());
    }

    #[test]
    fn kind_display() {
        assert_eq!(PacketKind::Hello.to_string(), "HELLO");
        assert_eq!(PacketKind::Lost.to_string(), "LOST");
    }
}
