//! Per-node protocol statistics.

use core::time::Duration;

/// Counters a [`crate::MeshNode`] maintains about its own behaviour.
///
/// These are protocol-level numbers (what the node *did*), complementing
/// the PHY-level metrics the simulator collects (what the channel did).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Hello broadcasts sent.
    pub hellos_sent: u64,
    /// Hello broadcasts received and applied.
    pub hellos_received: u64,
    /// Data packets originated by the local application.
    pub data_originated: u64,
    /// Data packets addressed to this node and delivered to the app.
    pub data_delivered: u64,
    /// Unicast packets relayed for other nodes.
    pub forwarded: u64,
    /// Unicast packets dropped because the TTL expired.
    pub ttl_expired: u64,
    /// Unicast packets dropped because no route existed at a relay.
    pub no_route_drops: u64,
    /// Frames that failed to decode.
    pub decode_errors: u64,
    /// Frames received that claimed our own address as originator
    /// (duplicate-address indicator).
    pub address_conflicts: u64,
    /// Outbound packets the transmit queue refused at admission
    /// (backpressure: the queue was full of equal-or-higher-priority
    /// traffic). Hellos, forwards and reliable-transfer control packets
    /// all land here instead of vanishing silently.
    pub queue_refusals: u64,
    /// Outbound frames dropped after exhausting CAD retries.
    pub cad_exhausted: u64,
    /// Outbound frames delayed or refused by the duty-cycle budget.
    pub duty_cycle_deferrals: u64,
    /// Reliable transfers completed as sender.
    pub reliable_sent: u64,
    /// Reliable transfers completed as receiver.
    pub reliable_received: u64,
    /// Reliable transfers aborted (either side).
    pub reliable_aborted: u64,
    /// Fragment retransmissions performed as sender.
    pub reliable_retransmits: u64,
    /// Total airtime this node has transmitted.
    pub airtime: Duration,
    /// Total frames this node has put on the air.
    pub frames_sent: u64,
}

impl NodeStats {
    /// Zeroed statistics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_zeroed() {
        let s = NodeStats::new();
        assert_eq!(s, NodeStats::default());
        assert_eq!(s.hellos_sent, 0);
        assert_eq!(s.airtime, Duration::ZERO);
    }
}
