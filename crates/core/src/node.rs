//! The LoRaMesher node: protocol state machine and application API.
//!
//! [`MeshNode`] composes the routing table, the prioritised transmit
//! queue, the CSMA/duty-cycle MAC and the reliable-transfer engines into
//! one sans-IO state machine implementing [`NodeProtocol`].
//!
//! ## Lifecycle of a datagram
//!
//! 1. The application calls [`MeshNode::send_datagram`]; the packet gets
//!    its `via` next hop from the routing table and joins the queue.
//! 2. [`MeshNode::next_wake`] reports "now"; the host fires
//!    [`NodeProtocol::on_timer`]; the MAC asks for a CAD scan.
//! 3. On a clear channel (and available duty budget) the frame is
//!    transmitted; otherwise the MAC backs off and retries.
//! 4. Every node that receives the frame checks the `via` field: only the
//!    addressed next hop forwards it (rewriting `via` and decrementing the
//!    TTL); the final destination hands the payload to its application as
//!    a [`MeshEvent::Datagram`].
//!
//! Reliable transfers follow the same path per packet, orchestrated by
//! the state machines in [`crate::reliable`].

use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;

use lora_phy::link::SignalQuality;
use lora_phy::region::DutyCycleTracker;

use crate::addr::Address;
use crate::codec::{self, MAX_FRAG_PAYLOAD};
use crate::config::MeshConfig;
use crate::driver::{NodeProtocol, RadioRequest};
use crate::error::SendError;
use crate::mac::{Mac, MacAction};
use crate::packet::{Forwarding, Packet, PacketKind, RouteEntry, SYNC_ACK_INDEX};
use crate::queue::TxQueue;
use crate::reliable::{InboundTransfer, OutboundTransfer, ReceiverAction, SenderAction};
use crate::rng::ProtocolRng;
use crate::routing::RoutingTable;
use crate::stats::NodeStats;

/// Something the protocol reports to the application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MeshEvent {
    /// A unicast datagram addressed to this node arrived.
    Datagram {
        /// Originating node.
        src: Address,
        /// Application payload.
        payload: Vec<u8>,
    },
    /// A broadcast datagram arrived.
    Broadcast {
        /// Originating node.
        src: Address,
        /// Application payload.
        payload: Vec<u8>,
    },
    /// A reliable transfer addressed to this node completed.
    ReliableReceived {
        /// Originating node.
        src: Address,
        /// The reassembled payload.
        payload: Vec<u8>,
    },
    /// A reliable transfer this node sent was fully acknowledged.
    ReliableDelivered {
        /// The destination.
        dst: Address,
        /// The transfer's sequence id.
        seq: u8,
    },
    /// A reliable transfer this node sent was aborted.
    ReliableFailed {
        /// The destination.
        dst: Address,
        /// The transfer's sequence id.
        seq: u8,
    },
    /// Routes timed out and were removed.
    RoutesExpired {
        /// The destinations that became unreachable.
        destinations: Vec<Address>,
    },
    /// An outbound frame was dropped by the MAC (CAD retries exhausted or
    /// frame larger than the duty budget).
    FrameDropped {
        /// The dropped packet's kind.
        kind: PacketKind,
    },
    /// A half-finished inbound transfer was abandoned.
    InboundTransferExpired {
        /// The transfer's originator.
        src: Address,
        /// The transfer's sequence id.
        seq: u8,
    },
    /// A frame originated by *our own address* was received. A
    /// half-duplex radio never hears its own transmissions, so this
    /// means another node in range uses the same address — a
    /// misconfiguration the application must resolve.
    AddressConflict {
        /// The kind of the conflicting frame.
        kind: PacketKind,
    },
}

/// A LoRaMesher node.
///
/// See the crate-level docs for the protocol and the [`driver`]
/// module for how to host one.
///
/// [`driver`]: crate::driver
#[derive(Debug)]
pub struct MeshNode {
    config: MeshConfig,
    rng: ProtocolRng,
    routing: RoutingTable,
    txq: TxQueue,
    mac: Mac,
    stats: NodeStats,
    events: VecDeque<MeshEvent>,
    next_hello: Duration,
    /// Hello frame cache: while the routing table's
    /// [`RoutingTable::version`] matches `hello_version`, consecutive
    /// hellos carry identical entries, so the wire image is reused with
    /// only the packet-id byte patched instead of re-serialising the
    /// whole table every beacon interval.
    hello_entries: Vec<RouteEntry>,
    hello_wire: Vec<u8>,
    hello_version: Option<u64>,
    hello_wire_id: Option<u8>,
    next_packet_id: u8,
    next_seq: u8,
    outbound: BTreeMap<Address, OutboundTransfer>,
    inbound: BTreeMap<(Address, u8), InboundTransfer>,
    started: bool,
}

impl MeshNode {
    /// Creates a node from its configuration.
    #[must_use]
    pub fn new(config: MeshConfig) -> Self {
        let duty = config
            .region
            .sub_band_for(config.region.default_frequency_hz())
            .map_or_else(DutyCycleTracker::unlimited, |b| {
                DutyCycleTracker::new(b.duty_cycle, Duration::from_secs(3600))
            });
        let mut mac = Mac::new(
            duty,
            config.backoff_slot,
            config.max_backoff_exponent,
            config.max_cad_retries,
        );
        mac.set_max_dwell(
            config
                .region
                .sub_band_for(config.region.default_frequency_hz())
                .and_then(|b| b.max_dwell),
        );
        let rng = ProtocolRng::new(config.seed);
        MeshNode {
            txq: TxQueue::new(config.tx_queue_capacity),
            mac,
            rng,
            routing: RoutingTable::with_policy(config.routing_policy),
            stats: NodeStats::new(),
            events: VecDeque::new(),
            next_hello: Duration::ZERO,
            hello_entries: Vec::new(),
            hello_wire: Vec::new(),
            hello_version: None,
            hello_wire_id: None,
            next_packet_id: 0,
            next_seq: 0,
            outbound: BTreeMap::new(),
            inbound: BTreeMap::new(),
            started: false,
            config,
        }
    }

    /// This node's address.
    #[must_use]
    pub fn address(&self) -> Address {
        self.config.address
    }

    /// The node's configuration.
    #[must_use]
    pub fn config(&self) -> &MeshConfig {
        &self.config
    }

    /// Read access to the routing table.
    #[must_use]
    pub fn routing_table(&self) -> &RoutingTable {
        &self.routing
    }

    /// A snapshot of the node's protocol statistics.
    #[must_use]
    pub fn stats(&self) -> NodeStats {
        let mut s = self.stats;
        s.duty_cycle_deferrals = self.mac.duty_deferrals;
        s.cad_exhausted = self.mac.cad_drops;
        // Include retransmissions of transfers still in flight.
        s.reliable_retransmits += self
            .outbound
            .values()
            .map(|t| u64::from(t.retransmits))
            .sum::<u64>();
        s
    }

    /// Drains the pending application events.
    pub fn take_events(&mut self) -> Vec<MeshEvent> {
        self.events.drain(..).collect()
    }

    /// Outbound frames currently queued (diagnostics).
    #[must_use]
    pub fn tx_queue_len(&self) -> usize {
        self.txq.len()
    }

    /// Progress of the active outbound transfers: destination, sequence
    /// id and phase (diagnostics).
    #[must_use]
    pub fn outbound_transfers(&self) -> Vec<(Address, u8, crate::reliable::TransferPhase)> {
        self.outbound
            .iter()
            .map(|(dst, t)| (*dst, t.seq, t.phase()))
            .collect()
    }

    /// Progress of the active inbound transfers: source, sequence id and
    /// fragments received out of the announced total (diagnostics).
    #[must_use]
    pub fn inbound_transfers(&self) -> Vec<(Address, u8, usize, usize)> {
        self.inbound
            .iter()
            .map(|((src, seq), t)| {
                (
                    *src,
                    *seq,
                    t.received_count(),
                    t.received_count() + t.missing().len(),
                )
            })
            .collect()
    }

    /// Submits a single-frame datagram to `dst` (or broadcast).
    ///
    /// Returns the packet id on success.
    ///
    /// ```
    /// use loramesher::{Address, MeshConfig, MeshNode, SendError};
    /// use std::time::Duration;
    ///
    /// let mut node = MeshNode::new(MeshConfig::builder(Address::new(1)).build());
    /// // Without a route the submission is refused...
    /// assert_eq!(
    ///     node.send_datagram(Address::new(2), b"hi".to_vec(), Duration::ZERO),
    ///     Err(SendError::NoRoute(Address::new(2)))
    /// );
    /// // ...but broadcasts never need one.
    /// assert!(node
    ///     .send_datagram(Address::BROADCAST, b"hi".to_vec(), Duration::ZERO)
    ///     .is_ok());
    /// ```
    ///
    /// # Errors
    ///
    /// * [`SendError::EmptyPayload`] — nothing to send.
    /// * [`SendError::PayloadTooLarge`] — use [`MeshNode::send_reliable`].
    /// * [`SendError::NoRoute`] — the destination is not in the routing
    ///   table yet.
    /// * [`SendError::QueueFull`] — the transmit queue refused the frame.
    pub fn send_datagram(
        &mut self,
        dst: Address,
        payload: Vec<u8>,
        _now: Duration,
    ) -> Result<u8, SendError> {
        if payload.is_empty() {
            return Err(SendError::EmptyPayload);
        }
        if payload.len() > self.config.max_datagram_payload {
            return Err(SendError::PayloadTooLarge {
                len: payload.len(),
                max: self.config.max_datagram_payload,
            });
        }
        let via = self.resolve_via(dst)?;
        let id = self.next_id();
        let packet = Packet::Data {
            dst,
            src: self.config.address,
            id,
            fwd: Forwarding {
                via,
                ttl: self.config.max_ttl,
            },
            payload,
        };
        if !self.enqueue(packet) {
            return Err(SendError::QueueFull);
        }
        self.stats.data_originated += 1;
        Ok(id)
    }

    /// Starts a reliable transfer of an arbitrarily large payload.
    ///
    /// Returns the transfer's sequence id; completion is reported as
    /// [`MeshEvent::ReliableDelivered`] or [`MeshEvent::ReliableFailed`].
    ///
    /// # Errors
    ///
    /// * [`SendError::EmptyPayload`] — nothing to send.
    /// * [`SendError::BroadcastUnsupported`] — reliable transfers are
    ///   unicast only.
    /// * [`SendError::NoRoute`] — the destination is unknown.
    /// * [`SendError::TransferInProgress`] — one transfer per destination
    ///   at a time.
    /// * [`SendError::QueueFull`] — the transmit queue refused the Sync.
    pub fn send_reliable(
        &mut self,
        dst: Address,
        payload: Vec<u8>,
        now: Duration,
    ) -> Result<u8, SendError> {
        if payload.is_empty() {
            return Err(SendError::EmptyPayload);
        }
        if dst.is_broadcast() {
            return Err(SendError::BroadcastUnsupported);
        }
        if self.routing.next_hop(dst).is_none() {
            return Err(SendError::NoRoute(dst));
        }
        if self.outbound.contains_key(&dst) {
            return Err(SendError::TransferInProgress(dst));
        }
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        let mut transfer = OutboundTransfer::new(
            dst,
            seq,
            &payload,
            MAX_FRAG_PAYLOAD,
            self.config.reliable_timeout,
            self.config.reliable_max_retries,
        );
        let action = transfer.start(now);
        transfer.defer_deadline(self.ack_jitter());
        self.outbound.insert(dst, transfer);
        self.apply_sender_action(dst, action, now);
        Ok(seq)
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    fn next_id(&mut self) -> u8 {
        let id = self.next_packet_id;
        self.next_packet_id = self.next_packet_id.wrapping_add(1);
        id
    }

    /// Random extra delay added to every reliable-transfer deadline:
    /// uniformly 0–50 % of the base timeout. See
    /// [`OutboundTransfer::defer_deadline`] for why this is load-bearing.
    fn ack_jitter(&mut self) -> Duration {
        self.config
            .reliable_timeout
            .mul_f64(0.5 * self.rng.gen_f64())
    }

    fn resolve_via(&self, dst: Address) -> Result<Address, SendError> {
        if dst.is_broadcast() {
            Ok(Address::BROADCAST)
        } else {
            self.routing.next_hop(dst).ok_or(SendError::NoRoute(dst))
        }
    }

    fn enqueue(&mut self, packet: Packet) -> bool {
        let accepted = self.txq.push(packet);
        if !accepted {
            // Surface the refusal instead of dropping silently: sweeps
            // compare this counter to spot congestion collapse.
            self.stats.queue_refusals += 1;
        }
        accepted
    }

    fn schedule_next_hello(&mut self, now: Duration) {
        // ±10 % jitter desynchronises neighbours that booted together.
        let jitter = if self.config.hello_jitter {
            0.9 + 0.2 * self.rng.gen_f64()
        } else {
            1.0
        };
        self.next_hello = now + self.config.hello_interval.mul_f64(jitter);
    }

    fn emit_hello(&mut self, now: Duration) {
        let id = self.next_id();
        let hello = if self.hello_version == Some(self.routing.version()) {
            // The table's Hello-visible content is unchanged since the
            // cached encoding: only the packet id differs, so patch that
            // single byte instead of re-serialising the whole table.
            if let Some(b) = self.hello_wire.get_mut(codec::HEADER_ID_OFFSET) {
                *b = id;
            }
            self.hello_wire_id = Some(id);
            Packet::Hello {
                src: self.config.address,
                id,
                role: self.config.role,
                entries: self.hello_entries.clone(),
            }
        } else {
            let mut entries = self.routing.as_entries();
            entries.truncate(codec::MAX_HELLO_ENTRIES);
            let hello = Packet::Hello {
                src: self.config.address,
                id,
                role: self.config.role,
                entries,
            };
            match codec::encode_into(&hello, &mut self.hello_wire) {
                Ok(()) => {
                    self.hello_version = Some(self.routing.version());
                    self.hello_wire_id = Some(id);
                    if let Packet::Hello { entries, .. } = &hello {
                        self.hello_entries.clone_from(entries);
                    }
                }
                Err(_) => {
                    // Unencodable hello (cannot happen with the entry cap,
                    // but stay safe): poison the cache.
                    self.hello_version = None;
                    self.hello_wire_id = None;
                    self.hello_wire.clear();
                }
            }
            hello
        };
        if self.enqueue(hello) {
            self.stats.hellos_sent += 1;
        }
        self.schedule_next_hello(now);
    }

    fn apply_sender_action(&mut self, dst: Address, action: SenderAction, _now: Duration) {
        match action {
            SenderAction::None => {}
            SenderAction::SendSync => {
                let Some(t) = self.outbound.get(&dst) else {
                    return;
                };
                let (seq, frag_count, total_len) = (t.seq, t.frag_count(), t.total_len());
                let Some(via) = self.routing.next_hop(dst) else {
                    self.stats.no_route_drops += 1;
                    return;
                };
                let id = self.next_id();
                let packet = Packet::Sync {
                    dst,
                    src: self.config.address,
                    id,
                    fwd: Forwarding {
                        via,
                        ttl: self.config.max_ttl,
                    },
                    seq,
                    frag_count,
                    total_len,
                };
                let _ = self.enqueue(packet);
            }
            SenderAction::SendFrag(index) => {
                let Some(t) = self.outbound.get(&dst) else {
                    return;
                };
                let (seq, data) = (t.seq, t.fragment(index).to_vec());
                let Some(via) = self.routing.next_hop(dst) else {
                    self.stats.no_route_drops += 1;
                    return;
                };
                let id = self.next_id();
                let packet = Packet::Frag {
                    dst,
                    src: self.config.address,
                    id,
                    fwd: Forwarding {
                        via,
                        ttl: self.config.max_ttl,
                    },
                    seq,
                    index,
                    data,
                };
                let _ = self.enqueue(packet);
            }
            SenderAction::Completed => {
                if let Some(t) = self.outbound.remove(&dst) {
                    self.stats.reliable_sent += 1;
                    self.stats.reliable_retransmits += u64::from(t.retransmits);
                    self.events
                        .push_back(MeshEvent::ReliableDelivered { dst, seq: t.seq });
                }
            }
            SenderAction::Aborted(_) => {
                if let Some(t) = self.outbound.remove(&dst) {
                    self.stats.reliable_aborted += 1;
                    self.stats.reliable_retransmits += u64::from(t.retransmits);
                    self.events
                        .push_back(MeshEvent::ReliableFailed { dst, seq: t.seq });
                }
            }
        }
    }

    /// Sends a reliable-transfer control packet back to `peer`.
    fn send_control(&mut self, peer: Address, seq: u8, kind: ControlKind) {
        let Some(via) = self.routing.next_hop(peer) else {
            self.stats.no_route_drops += 1;
            return;
        };
        let id = self.next_id();
        let fwd = Forwarding {
            via,
            ttl: self.config.max_ttl,
        };
        let src = self.config.address;
        let packet = match kind {
            ControlKind::Ack(index) => Packet::Ack {
                dst: peer,
                src,
                id,
                fwd,
                seq,
                index,
            },
            ControlKind::Lost(missing) => Packet::Lost {
                dst: peer,
                src,
                id,
                fwd,
                seq,
                missing,
            },
        };
        let _ = self.enqueue(packet);
    }

    fn consume(&mut self, packet: Packet, now: Duration) {
        match packet {
            Packet::Hello { .. } => {
                // Handled in on_frame; tolerate a misrouted Hello
                // instead of crashing the node.
                debug_assert!(false, "hello handled in on_frame");
            }
            Packet::Data { src, payload, .. } => {
                self.stats.data_delivered += 1;
                self.events.push_back(MeshEvent::Datagram { src, payload });
            }
            Packet::Sync {
                src,
                seq,
                frag_count,
                total_len,
                ..
            } => {
                if frag_count == 0 {
                    self.stats.decode_errors += 1;
                    return;
                }
                let transfer = self
                    .inbound
                    .entry((src, seq))
                    .or_insert_with(|| InboundTransfer::new(src, seq, frag_count, total_len, now));
                let ReceiverAction::AckSync = transfer.on_sync(now) else {
                    return;
                };
                self.send_control(src, seq, ControlKind::Ack(SYNC_ACK_INDEX));
            }
            Packet::Frag {
                src,
                seq,
                index,
                data,
                ..
            } => {
                let Some(transfer) = self.inbound.get_mut(&(src, seq)) else {
                    // Sync never arrived (or expired): nothing to attach to.
                    return;
                };
                let actions = transfer.on_frag(index, &data, now);
                for action in actions {
                    match action {
                        ReceiverAction::AckSync => {
                            self.send_control(src, seq, ControlKind::Ack(SYNC_ACK_INDEX));
                        }
                        ReceiverAction::AckFrag(i) => {
                            self.send_control(src, seq, ControlKind::Ack(i));
                        }
                        ReceiverAction::Complete(payload) => {
                            self.stats.reliable_received += 1;
                            self.events
                                .push_back(MeshEvent::ReliableReceived { src, payload });
                        }
                    }
                }
            }
            Packet::Ack {
                src, seq, index, ..
            } => {
                let jitter = self.ack_jitter();
                if let Some(t) = self.outbound.get_mut(&src) {
                    if t.seq == seq {
                        let action = t.on_ack(index, now);
                        t.defer_deadline(jitter);
                        self.apply_sender_action(src, action, now);
                    }
                }
            }
            Packet::Lost {
                src, seq, missing, ..
            } => {
                let jitter = self.ack_jitter();
                if let Some(t) = self.outbound.get_mut(&src) {
                    if t.seq == seq {
                        let action = t.on_lost(&missing, now);
                        t.defer_deadline(jitter);
                        self.apply_sender_action(src, action, now);
                    }
                }
            }
        }
    }

    fn forward(&mut self, mut packet: Packet, _now: Duration) {
        let dst = packet.dst();
        let Some(next) = self.routing.next_hop(dst) else {
            self.stats.no_route_drops += 1;
            return;
        };
        // Only unicast packets reach here; a Hello without forwarding
        // would be a caller bug — drop it rather than panic.
        let Some(fwd) = packet.forwarding_mut() else {
            debug_assert!(false, "only unicast packets are forwarded");
            return;
        };
        if fwd.ttl <= 1 {
            self.stats.ttl_expired += 1;
            return;
        }
        fwd.ttl -= 1;
        fwd.via = next;
        if self.enqueue(packet) {
            self.stats.forwarded += 1;
        }
    }

    /// Runs every deadline that has passed; called from `on_timer`.
    fn process_due(&mut self, now: Duration, requests: &mut Vec<RadioRequest>) {
        // 1. Route expiry.
        if let Some(expiry) = self.routing.next_expiry(self.config.route_timeout) {
            if expiry <= now {
                let purged = self.routing.purge(now, self.config.route_timeout);
                if !purged.is_empty() {
                    self.events.push_back(MeshEvent::RoutesExpired {
                        destinations: purged,
                    });
                }
            }
        }
        // 2. Routing broadcast.
        if now >= self.next_hello {
            self.emit_hello(now);
        }
        // 3. Outbound reliable deadlines.
        let due: Vec<Address> = self
            .outbound
            .iter()
            .filter(|(_, t)| t.deadline().is_some_and(|d| d <= now))
            .map(|(dst, _)| *dst)
            .collect();
        for dst in due {
            let jitter = self.ack_jitter();
            let action = self
                .outbound
                .get_mut(&dst)
                .map(|t| {
                    let action = t.on_timeout(now);
                    t.defer_deadline(jitter);
                    action
                })
                .unwrap_or(SenderAction::None);
            self.apply_sender_action(dst, action, now);
        }
        // 4a. Inbound transfers that stalled mid-way: nudge the sender
        //     with a Lost request listing the missing fragments.
        let stalled: Vec<(Address, u8, Vec<u16>)> = self
            .inbound
            .iter()
            .filter(|(_, t)| {
                t.stalled(now, self.config.reliable_timeout)
                    && t.lost_requests() < self.config.reliable_max_retries
                    && !t.missing().is_empty()
            })
            .map(|(k, t)| (k.0, k.1, t.missing()))
            .collect();
        for (src, seq, missing) in stalled {
            if let Some(t) = self.inbound.get_mut(&(src, seq)) {
                t.note_lost_sent(now);
            }
            self.send_control(src, seq, ControlKind::Lost(missing));
        }
        // 4b. Inbound reassembly expiry.
        let expired: Vec<(Address, u8)> = self
            .inbound
            .iter()
            .filter(|(_, t)| t.expired(now, self.config.reassembly_timeout))
            .map(|(k, _)| *k)
            .collect();
        for key in expired {
            if let Some(t) = self.inbound.remove(&key) {
                if !t.is_delivered() {
                    self.stats.reliable_aborted += 1;
                    self.events.push_back(MeshEvent::InboundTransferExpired {
                        src: key.0,
                        seq: key.1,
                    });
                }
            }
        }
        // 5. Give the MAC a chance to move traffic.
        if !self.txq.is_empty() {
            if self.config.csma {
                if let MacAction::StartCad = self.mac.kick(now) {
                    requests.push(RadioRequest::StartCad);
                }
            } else {
                // ALOHA ablation: no carrier sensing, straight to air.
                let airtime = self
                    .txq
                    .peek()
                    .map(|p| self.config.modulation.time_on_air(codec::encoded_len(p)));
                if let Some(airtime) = airtime {
                    match self.mac.kick_aloha(airtime, now) {
                        MacAction::Transmit => {
                            if let Some(request) = self.transmit_front(airtime) {
                                requests.push(request);
                            }
                        }
                        MacAction::DropFrame => {
                            if let Some(packet) = self.txq.pop() {
                                self.events.push_back(MeshEvent::FrameDropped {
                                    kind: packet.kind(),
                                });
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    /// Pops and encodes the front of the queue for transmission; the MAC
    /// has already committed to `Transmitting`.
    fn transmit_front(&mut self, airtime: Duration) -> Option<RadioRequest> {
        let packet = self.txq.pop()?;
        if let Packet::Hello { id, .. } = &packet {
            if self.hello_wire_id == Some(*id) && !self.hello_wire.is_empty() {
                debug_assert_eq!(
                    codec::encode(&packet).ok().as_deref(),
                    Some(self.hello_wire.as_slice()),
                    "hello wire cache out of sync with the queued packet"
                );
                self.stats.frames_sent += 1;
                self.stats.airtime += airtime;
                return Some(RadioRequest::Transmit(self.hello_wire.clone()));
            }
        }
        match codec::encode(&packet) {
            Ok(frame) => {
                self.stats.frames_sent += 1;
                self.stats.airtime += airtime;
                Some(RadioRequest::Transmit(frame))
            }
            Err(_) => {
                // Should be impossible: frames are validated at enqueue
                // time. Recover the MAC and drop.
                self.mac.on_tx_done();
                self.stats.decode_errors += 1;
                None
            }
        }
    }
}

/// Control-packet kinds the receiver side sends back.
enum ControlKind {
    Ack(u16),
    Lost(Vec<u16>),
}

impl NodeProtocol for MeshNode {
    fn on_start(&mut self, now: Duration) -> Vec<RadioRequest> {
        self.started = true;
        // First hello soon after boot (1–5 s) so the mesh forms quickly,
        // jittered so co-booted nodes do not collide (unless the jitter
        // ablation is active).
        let jitter = if self.config.hello_jitter {
            Duration::from_millis(self.rng.gen_range(4000))
        } else {
            Duration::ZERO
        };
        self.next_hello = now + Duration::from_secs(1) + jitter;
        Vec::new()
    }

    fn on_timer(&mut self, now: Duration) -> Vec<RadioRequest> {
        let mut requests = Vec::new();
        self.process_due(now, &mut requests);
        requests
    }

    fn on_frame(
        &mut self,
        frame: &[u8],
        quality: SignalQuality,
        now: Duration,
    ) -> Vec<RadioRequest> {
        let packet = match codec::decode(frame) {
            Ok(p) => p,
            Err(_) => {
                self.stats.decode_errors += 1;
                return Vec::new();
            }
        };
        if packet.src() == self.config.address {
            // We cannot hear ourselves (half-duplex): someone else is
            // using our address.
            self.stats.address_conflicts += 1;
            self.events.push_back(MeshEvent::AddressConflict {
                kind: packet.kind(),
            });
            return Vec::new();
        }
        match &packet {
            Packet::Hello {
                src, role, entries, ..
            } => {
                self.routing.apply_hello(
                    self.config.address,
                    *src,
                    *role,
                    entries,
                    quality.snr,
                    now,
                );
                self.stats.hellos_received += 1;
            }
            _ => {
                let dst = packet.dst();
                // Every non-Hello kind decodes with a forwarding
                // extension; treat its absence as a decode error rather
                // than a panic on over-the-air input.
                let Some(fwd) = packet.forwarding() else {
                    self.stats.decode_errors += 1;
                    return Vec::new();
                };
                if dst == self.config.address {
                    self.consume(packet, now);
                } else if dst.is_broadcast() {
                    if let Packet::Data { src, payload, .. } = packet {
                        self.stats.data_delivered += 1;
                        self.events.push_back(MeshEvent::Broadcast { src, payload });
                    }
                } else if fwd.via == self.config.address {
                    self.forward(packet, now);
                }
                // Otherwise: overheard traffic for someone else; ignore.
            }
        }
        Vec::new()
    }

    fn on_tx_done(&mut self, _now: Duration) -> Vec<RadioRequest> {
        self.mac.on_tx_done();
        Vec::new()
    }

    fn on_cad_done(&mut self, busy: bool, now: Duration) -> Vec<RadioRequest> {
        let Some(front) = self.txq.peek() else {
            return Vec::new(); // nothing left to send (should not happen)
        };
        let airtime = self
            .config
            .modulation
            .time_on_air(codec::encoded_len(front));
        match self.mac.on_cad_done(busy, airtime, now, &mut self.rng) {
            MacAction::Transmit => self.transmit_front(airtime).into_iter().collect(),
            MacAction::DropFrame => {
                if let Some(packet) = self.txq.pop() {
                    self.events.push_back(MeshEvent::FrameDropped {
                        kind: packet.kind(),
                    });
                }
                Vec::new()
            }
            MacAction::StartCad => vec![RadioRequest::StartCad],
            MacAction::None => Vec::new(),
        }
    }

    fn next_wake(&self) -> Option<Duration> {
        if !self.started {
            return None;
        }
        let mut wake: Option<Duration> = Some(self.next_hello);
        let mut consider = |t: Option<Duration>| {
            if let Some(t) = t {
                wake = Some(wake.map_or(t, |w| w.min(t)));
            }
        };
        if self.mac.is_ready() && !self.txq.is_empty() {
            consider(Some(Duration::ZERO)); // immediate
        }
        consider(self.mac.next_wake());
        consider(self.routing.next_expiry(self.config.route_timeout));
        consider(
            self.outbound
                .values()
                .filter_map(OutboundTransfer::deadline)
                .min(),
        );
        consider(
            self.inbound
                .values()
                .map(|t| t.last_activity + self.config.reassembly_timeout)
                .min(),
        );
        consider(
            self.inbound
                .values()
                .filter(|t| t.lost_requests() < self.config.reliable_max_retries)
                .filter_map(|t| t.stall_deadline(self.config.reliable_timeout))
                .min(),
        );
        wake
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MeshConfig;
    use lora_phy::region::Region;

    const A1: Address = Address::new(1);
    const A2: Address = Address::new(2);
    const A3: Address = Address::new(3);

    /// Multi-seed sweeps host protocol nodes on worker threads, so the
    /// node must stay Send. Compile-time check.
    #[test]
    fn mesh_node_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<MeshNode>();
    }

    fn node(addr: Address) -> MeshNode {
        MeshNode::new(
            MeshConfig::builder(addr)
                .region(Region::Unlimited)
                .hello_interval(Duration::from_secs(30))
                .build(),
        )
    }

    fn quality() -> SignalQuality {
        SignalQuality::ideal()
    }

    /// Drives a set of nodes until quiescent: fires due timers, answers
    /// CAD requests with "clear", and delivers transmissions to every
    /// other node. Advances time only when nothing is immediately due.
    fn pump(nodes: &mut [MeshNode], until: Duration) {
        let mut now = Duration::ZERO;
        for n in nodes.iter_mut() {
            let _ = n.on_start(now);
        }
        while now <= until {
            // Fire all due work at `now`.
            let mut progressed = false;
            for i in 0..nodes.len() {
                let due = nodes[i].next_wake().is_some_and(|w| w <= now);
                if !due {
                    continue;
                }
                progressed = true;
                let mut requests = nodes[i].on_timer(now);
                // Resolve CAD immediately (clear channel in this harness).
                while let Some(req) = requests.pop() {
                    match req {
                        RadioRequest::StartCad => {
                            requests.extend(nodes[i].on_cad_done(false, now));
                        }
                        RadioRequest::Transmit(frame) => {
                            for (j, node) in nodes.iter_mut().enumerate() {
                                if j != i {
                                    let _ = node.on_frame(&frame, quality(), now);
                                }
                            }
                            requests.extend(nodes[i].on_tx_done(now));
                        }
                    }
                }
            }
            if !progressed {
                // Jump to the next deadline.
                let next = nodes
                    .iter()
                    .filter_map(NodeProtocol::next_wake)
                    .min()
                    .unwrap_or(until + Duration::from_secs(1));
                now = next.max(now + Duration::from_millis(1));
            }
        }
    }

    #[test]
    fn hello_exchange_builds_routes() {
        let mut nodes = vec![node(A1), node(A2)];
        pump(&mut nodes, Duration::from_secs(10));
        assert_eq!(nodes[0].routing_table().next_hop(A2), Some(A2));
        assert_eq!(nodes[1].routing_table().next_hop(A1), Some(A1));
        assert!(nodes[0].stats().hellos_sent >= 1);
        assert!(nodes[0].stats().hellos_received >= 1);
    }

    #[test]
    fn datagram_delivered_between_neighbours() {
        let mut nodes = vec![node(A1), node(A2)];
        pump(&mut nodes, Duration::from_secs(10));
        let now = Duration::from_secs(10);
        nodes[0]
            .send_datagram(A2, b"ping".to_vec(), now)
            .expect("route exists");
        pump(&mut nodes, Duration::from_secs(12));
        let events = nodes[1].take_events();
        assert!(
            events.contains(&MeshEvent::Datagram {
                src: A1,
                payload: b"ping".to_vec()
            }),
            "events: {events:?}"
        );
        assert_eq!(nodes[1].stats().data_delivered, 1);
    }

    #[test]
    fn broadcast_delivered_to_all() {
        let mut nodes = vec![node(A1), node(A2), node(A3)];
        pump(&mut nodes, Duration::from_secs(10));
        nodes[0]
            .send_datagram(Address::BROADCAST, b"hi".to_vec(), Duration::from_secs(10))
            .unwrap();
        pump(&mut nodes, Duration::from_secs(12));
        for n in &mut nodes[1..] {
            let events = n.take_events();
            assert!(events
                .iter()
                .any(|e| matches!(e, MeshEvent::Broadcast { src, .. } if *src == A1)));
        }
    }

    #[test]
    fn send_without_route_fails() {
        let mut n = node(A1);
        let _ = n.on_start(Duration::ZERO);
        assert_eq!(
            n.send_datagram(A2, vec![1], Duration::ZERO),
            Err(SendError::NoRoute(A2))
        );
        assert_eq!(
            n.send_reliable(A2, vec![1; 500], Duration::ZERO),
            Err(SendError::NoRoute(A2))
        );
    }

    #[test]
    fn send_validation_errors() {
        let mut n = node(A1);
        let _ = n.on_start(Duration::ZERO);
        assert_eq!(
            n.send_datagram(A2, vec![], Duration::ZERO),
            Err(SendError::EmptyPayload)
        );
        assert!(matches!(
            n.send_datagram(A2, vec![0; 4000], Duration::ZERO),
            Err(SendError::PayloadTooLarge { .. })
        ));
        assert_eq!(
            n.send_reliable(Address::BROADCAST, vec![1], Duration::ZERO),
            Err(SendError::BroadcastUnsupported)
        );
        assert_eq!(
            n.send_reliable(A2, vec![], Duration::ZERO),
            Err(SendError::EmptyPayload)
        );
    }

    #[test]
    fn reliable_transfer_between_neighbours() {
        let mut nodes = vec![node(A1), node(A2)];
        pump(&mut nodes, Duration::from_secs(10));
        let payload: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        let seq = nodes[0]
            .send_reliable(A2, payload.clone(), Duration::from_secs(10))
            .expect("route exists");
        pump(&mut nodes, Duration::from_secs(60));
        let rx_events = nodes[1].take_events();
        assert!(
            rx_events.iter().any(
                |e| matches!(e, MeshEvent::ReliableReceived { src, payload: p } if *src == A1 && *p == payload)
            ),
            "receiver events: {rx_events:?}"
        );
        let tx_events = nodes[0].take_events();
        assert!(tx_events.contains(&MeshEvent::ReliableDelivered { dst: A2, seq }));
        assert_eq!(nodes[0].stats().reliable_sent, 1);
        assert_eq!(nodes[1].stats().reliable_received, 1);
    }

    #[test]
    fn second_transfer_to_same_dst_refused_while_active() {
        let mut nodes = vec![node(A1), node(A2)];
        pump(&mut nodes, Duration::from_secs(10));
        let now = Duration::from_secs(10);
        nodes[0].send_reliable(A2, vec![1; 500], now).unwrap();
        assert_eq!(
            nodes[0].send_reliable(A2, vec![2; 500], now),
            Err(SendError::TransferInProgress(A2))
        );
    }

    #[test]
    fn reliable_transfer_aborts_when_peer_silent() {
        let mut a = node(A1);
        let b = node(A2);
        // Form routes.
        let mut pair = vec![a, b];
        pump(&mut pair, Duration::from_secs(10));
        a = pair.remove(0);
        // b is now gone: a sends into the void.
        let seq = a
            .send_reliable(A2, vec![0; 300], Duration::from_secs(10))
            .unwrap();
        // Drive only `a` long enough for all retries to burn out.
        let mut solo = vec![a];
        pump(&mut solo, Duration::from_secs(200));
        let events = solo[0].take_events();
        assert!(
            events.contains(&MeshEvent::ReliableFailed { dst: A2, seq }),
            "events: {events:?}"
        );
        assert_eq!(solo[0].stats().reliable_aborted, 1);
        assert!(solo[0].stats().reliable_retransmits > 0);
        drop(pair);
    }

    #[test]
    fn multi_hop_route_learned_and_used() {
        // Chain A1 - A2 - A3 with A1 and A3 out of range: emulate by only
        // delivering frames between adjacent nodes.
        let mut nodes = [node(A1), node(A2), node(A3)];
        let mut now = Duration::ZERO;
        for n in nodes.iter_mut() {
            let _ = n.on_start(now);
        }
        let until = Duration::from_secs(70);
        let adjacent = |i: usize, j: usize| i.abs_diff(j) == 1;
        while now <= until {
            let mut progressed = false;
            for i in 0..nodes.len() {
                if nodes[i].next_wake().is_none_or(|w| w > now) {
                    continue;
                }
                progressed = true;
                let mut requests = nodes[i].on_timer(now);
                while let Some(req) = requests.pop() {
                    match req {
                        RadioRequest::StartCad => {
                            requests.extend(nodes[i].on_cad_done(false, now));
                        }
                        RadioRequest::Transmit(frame) => {
                            for (j, node) in nodes.iter_mut().enumerate() {
                                if j != i && adjacent(i, j) {
                                    let _ = node.on_frame(&frame, quality(), now);
                                }
                            }
                            requests.extend(nodes[i].on_tx_done(now));
                        }
                    }
                }
            }
            if !progressed {
                let next = nodes
                    .iter()
                    .filter_map(NodeProtocol::next_wake)
                    .min()
                    .unwrap_or(until + Duration::from_secs(1));
                now = next.max(now + Duration::from_millis(1));
            }
            // Once A1 knows a route to A3, send through the mesh.
            if nodes[0].routing_table().next_hop(A3) == Some(A2)
                && nodes[0].stats().data_originated == 0
            {
                nodes[0].send_datagram(A3, b"relay".to_vec(), now).unwrap();
            }
        }
        assert_eq!(nodes[0].routing_table().next_hop(A3), Some(A2));
        assert_eq!(nodes[0].routing_table().route(A3).unwrap().metric, 2);
        let events = nodes[2].take_events();
        assert!(
            events.contains(&MeshEvent::Datagram {
                src: A1,
                payload: b"relay".to_vec()
            }),
            "A3 events: {events:?}"
        );
        assert_eq!(nodes[1].stats().forwarded, 1);
    }

    #[test]
    fn ttl_expiry_drops_packet() {
        let mut n = node(A2);
        let _ = n.on_start(Duration::ZERO);
        // Teach A2 routes so forwarding is possible.
        let hello = codec::encode(&Packet::Hello {
            src: A3,
            id: 0,
            role: 0,
            entries: vec![],
        })
        .unwrap();
        let _ = n.on_frame(&hello, quality(), Duration::ZERO);
        // A data packet for A3 via us with TTL 1: must die here.
        let data = codec::encode(&Packet::Data {
            dst: A3,
            src: A1,
            id: 0,
            fwd: Forwarding { via: A2, ttl: 1 },
            payload: vec![1],
        })
        .unwrap();
        let _ = n.on_frame(&data, quality(), Duration::ZERO);
        assert_eq!(n.stats().ttl_expired, 1);
        assert_eq!(n.stats().forwarded, 0);
    }

    #[test]
    fn forward_without_route_is_counted() {
        let mut n = node(A2);
        let _ = n.on_start(Duration::ZERO);
        let data = codec::encode(&Packet::Data {
            dst: A3,
            src: A1,
            id: 0,
            fwd: Forwarding { via: A2, ttl: 5 },
            payload: vec![1],
        })
        .unwrap();
        let _ = n.on_frame(&data, quality(), Duration::ZERO);
        assert_eq!(n.stats().no_route_drops, 1);
    }

    #[test]
    fn packet_not_via_us_is_ignored() {
        let mut n = node(A2);
        let _ = n.on_start(Duration::ZERO);
        let data = codec::encode(&Packet::Data {
            dst: A3,
            src: A1,
            id: 0,
            fwd: Forwarding { via: A3, ttl: 5 },
            payload: vec![1],
        })
        .unwrap();
        let _ = n.on_frame(&data, quality(), Duration::ZERO);
        assert_eq!(n.stats().forwarded, 0);
        assert_eq!(n.stats().no_route_drops, 0);
        assert!(n.take_events().is_empty());
    }

    #[test]
    fn garbage_frame_counted_as_decode_error() {
        let mut n = node(A1);
        let _ = n.on_start(Duration::ZERO);
        let _ = n.on_frame(&[0xFF, 0x01], quality(), Duration::ZERO);
        assert_eq!(n.stats().decode_errors, 1);
    }

    #[test]
    fn frame_with_own_source_address_flags_a_conflict() {
        let mut n = node(A1);
        let _ = n.on_start(Duration::ZERO);
        let hello = codec::encode(&Packet::Hello {
            src: A1,
            id: 0,
            role: 0,
            entries: vec![],
        })
        .unwrap();
        let _ = n.on_frame(&hello, quality(), Duration::ZERO);
        // Not processed as routing input...
        assert_eq!(n.stats().hellos_received, 0);
        assert!(n.routing_table().is_empty());
        // ...but surfaced as a duplicate-address indicator.
        assert_eq!(n.stats().address_conflicts, 1);
        assert!(n.take_events().contains(&MeshEvent::AddressConflict {
            kind: PacketKind::Hello
        }));
    }

    #[test]
    fn queue_refusals_are_counted_as_backpressure() {
        let mut n = MeshNode::new(
            MeshConfig::builder(A1)
                .region(Region::Unlimited)
                .tx_queue_capacity(1)
                .hello_interval(Duration::from_secs(1000))
                .build(),
        );
        let _ = n.on_start(Duration::ZERO);
        // First broadcast datagram fills the single-slot queue.
        assert!(n
            .send_datagram(Address::BROADCAST, b"one".to_vec(), Duration::ZERO)
            .is_ok());
        assert_eq!(n.stats().queue_refusals, 0);
        // Equal-priority traffic cannot evict: refused and counted.
        assert_eq!(
            n.send_datagram(Address::BROADCAST, b"two".to_vec(), Duration::ZERO),
            Err(SendError::QueueFull)
        );
        assert_eq!(
            n.send_datagram(Address::BROADCAST, b"three".to_vec(), Duration::ZERO),
            Err(SendError::QueueFull)
        );
        assert_eq!(n.stats().queue_refusals, 2);
        assert_eq!(n.stats().data_originated, 1);
    }

    #[test]
    fn routes_expire_and_generate_event() {
        let mut n = MeshNode::new(
            MeshConfig::builder(A1)
                .region(Region::Unlimited)
                .route_timeout(Duration::from_secs(60))
                .hello_interval(Duration::from_secs(1000))
                .build(),
        );
        let _ = n.on_start(Duration::ZERO);
        let hello = codec::encode(&Packet::Hello {
            src: A2,
            id: 0,
            role: 0,
            entries: vec![],
        })
        .unwrap();
        let _ = n.on_frame(&hello, quality(), Duration::from_secs(1));
        assert!(n.routing_table().next_hop(A2).is_some());
        // The wake should include the route expiry at t=61.
        let wake = n.next_wake().unwrap();
        assert!(wake <= Duration::from_secs(61));
        let _ = n.on_timer(Duration::from_secs(61));
        assert!(n.routing_table().next_hop(A2).is_none());
        assert!(n.take_events().contains(&MeshEvent::RoutesExpired {
            destinations: vec![A2]
        }));
    }

    #[test]
    fn next_wake_immediate_when_traffic_pending() {
        let mut nodes = vec![node(A1), node(A2)];
        pump(&mut nodes, Duration::from_secs(10));
        let now = Duration::from_secs(10);
        nodes[0].send_datagram(A2, vec![1], now).unwrap();
        assert_eq!(nodes[0].next_wake(), Some(Duration::ZERO));
    }

    #[test]
    fn stalled_inbound_transfer_requests_lost_fragments() {
        let mut b = node(A2);
        let _ = b.on_start(Duration::ZERO);
        // B learns a route back to A1.
        let hello = codec::encode(&Packet::Hello {
            src: A1,
            id: 0,
            role: 0,
            entries: vec![],
        })
        .unwrap();
        let _ = b.on_frame(&hello, quality(), Duration::ZERO);
        // A 3-fragment transfer opens and fragment 0 arrives...
        let fwd = Forwarding { via: A2, ttl: 5 };
        let sync = codec::encode(&Packet::Sync {
            dst: A2,
            src: A1,
            id: 1,
            fwd,
            seq: 0,
            frag_count: 3,
            total_len: 30,
        })
        .unwrap();
        let _ = b.on_frame(&sync, quality(), Duration::from_secs(1));
        let frag = codec::encode(&Packet::Frag {
            dst: A2,
            src: A1,
            id: 2,
            fwd,
            seq: 0,
            index: 0,
            data: vec![7; 10],
        })
        .unwrap();
        let _ = b.on_frame(&frag, quality(), Duration::from_secs(2));
        // ...then the sender goes quiet. After the reliable timeout the
        // node must queue a Lost request listing fragments 1 and 2.
        let stall_at = Duration::from_secs(2) + b.config().reliable_timeout;
        assert!(b.next_wake().unwrap() <= stall_at);
        let mut reqs = b.on_timer(stall_at);
        // Drain the queue through the MAC to observe the frame.
        let mut lost_seen = false;
        for _ in 0..10 {
            match reqs.pop() {
                Some(RadioRequest::StartCad) => {
                    reqs.extend(b.on_cad_done(false, stall_at));
                }
                Some(RadioRequest::Transmit(frame)) => {
                    if let Ok(Packet::Lost { missing, .. }) = codec::decode(&frame) {
                        assert_eq!(missing, vec![1, 2]);
                        lost_seen = true;
                    }
                    reqs.extend(b.on_tx_done(stall_at));
                }
                None => {
                    reqs.extend(b.on_timer(stall_at + Duration::from_millis(1)));
                    if reqs.is_empty() {
                        break;
                    }
                }
            }
        }
        assert!(lost_seen, "no Lost packet was transmitted");
    }

    #[test]
    fn aloha_mode_sends_without_cad() {
        let mut nodes = vec![
            MeshNode::new(
                MeshConfig::builder(A1)
                    .region(Region::Unlimited)
                    .hello_interval(Duration::from_secs(30))
                    .csma(false)
                    .build(),
            ),
            MeshNode::new(
                MeshConfig::builder(A2)
                    .region(Region::Unlimited)
                    .hello_interval(Duration::from_secs(30))
                    .csma(false)
                    .build(),
            ),
        ];
        pump(&mut nodes, Duration::from_secs(10));
        // Routes still form: hellos went straight to the air.
        assert_eq!(nodes[0].routing_table().next_hop(A2), Some(A2));
        let now = Duration::from_secs(10);
        nodes[0].send_datagram(A2, b"aloha".to_vec(), now).unwrap();
        pump(&mut nodes, Duration::from_secs(12));
        assert!(nodes[1].take_events().contains(&MeshEvent::Datagram {
            src: A1,
            payload: b"aloha".to_vec()
        }));
    }

    #[test]
    fn jitterless_hellos_fire_on_exact_schedule() {
        let mut n = MeshNode::new(
            MeshConfig::builder(A1)
                .region(Region::Unlimited)
                .hello_interval(Duration::from_secs(30))
                .hello_jitter(false)
                .build(),
        );
        let _ = n.on_start(Duration::ZERO);
        // First hello exactly 1 s after boot, then every 30 s sharp.
        assert_eq!(n.next_wake(), Some(Duration::from_secs(1)));
        let reqs = n.on_timer(Duration::from_secs(1));
        assert_eq!(reqs, vec![RadioRequest::StartCad]);
        let tx = n.on_cad_done(false, Duration::from_secs(1));
        assert!(matches!(tx.as_slice(), [RadioRequest::Transmit(_)]));
        let _ = n.on_tx_done(Duration::from_millis(1100));
        assert_eq!(n.next_wake(), Some(Duration::from_secs(31)));
    }

    #[test]
    fn stats_snapshot_includes_mac_counters() {
        let n = node(A1);
        let s = n.stats();
        assert_eq!(s.duty_cycle_deferrals, 0);
        assert_eq!(s.cad_exhausted, 0);
    }

    #[test]
    fn hello_wire_cache_patches_id_until_table_changes() {
        let mut n = node(A1);
        n.routing.heard_from(A2, 0.0, Duration::ZERO);
        n.emit_hello(Duration::ZERO);
        let first_wire = n.hello_wire.clone();
        let v = n.hello_version;
        assert!(v.is_some());
        // Unchanged table: the cached wire image is reused with only the
        // packet-id byte rewritten.
        n.emit_hello(Duration::from_secs(30));
        assert_eq!(n.hello_version, v, "unchanged table must not re-encode");
        assert_eq!(first_wire.len(), n.hello_wire.len());
        let diff: Vec<usize> = first_wire
            .iter()
            .zip(n.hello_wire.iter())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(diff, vec![codec::HEADER_ID_OFFSET]);
        // A routing change invalidates the cache and re-encodes.
        n.routing.heard_from(A3, 0.0, Duration::from_secs(31));
        n.emit_hello(Duration::from_secs(60));
        assert_ne!(n.hello_version, v);
        match codec::decode(&n.hello_wire).unwrap() {
            Packet::Hello { entries, .. } => assert_eq!(entries.len(), 2),
            p => panic!("unexpected {p:?}"),
        }
    }

    #[test]
    fn transmit_front_reuses_cached_hello_wire() {
        let mut n = node(A1);
        n.routing.heard_from(A2, 0.0, Duration::ZERO);
        n.emit_hello(Duration::ZERO);
        let wire = n.hello_wire.clone();
        match n.transmit_front(Duration::from_millis(50)) {
            Some(RadioRequest::Transmit(frame)) => {
                assert_eq!(frame, wire);
                match codec::decode(&frame).unwrap() {
                    Packet::Hello { src, .. } => assert_eq!(src, A1),
                    p => panic!("unexpected {p:?}"),
                }
            }
            r => panic!("unexpected {r:?}"),
        }
    }

    #[test]
    fn oversized_routing_table_is_truncated_in_hello() {
        let mut n = MeshNode::new(
            MeshConfig::builder(A1)
                .region(Region::Unlimited)
                .hello_jitter(false)
                .build(),
        );
        let _ = n.on_start(Duration::ZERO);
        // Teach the node more routes than a single hello frame can carry
        // (the 255-byte PHY limit fits 61 entries).
        for neighbour in 0..5u16 {
            let entries: Vec<crate::packet::RouteEntry> = (0..20)
                .map(|k| crate::packet::RouteEntry {
                    address: Address::new(1000 + neighbour * 100 + k),
                    metric: 1,
                    role: 0,
                })
                .collect();
            let hello = codec::encode(&Packet::Hello {
                src: Address::new(100 + neighbour),
                id: 0,
                role: 0,
                entries,
            })
            .unwrap();
            let _ = n.on_frame(&hello, quality(), Duration::ZERO);
        }
        assert!(n.routing_table().len() > codec::MAX_HELLO_ENTRIES);
        // Fire the hello and capture the frame.
        let mut reqs = n.on_timer(Duration::from_secs(1));
        assert_eq!(reqs, vec![RadioRequest::StartCad]);
        reqs = n.on_cad_done(false, Duration::from_secs(1));
        let RadioRequest::Transmit(frame) = &reqs[0] else {
            panic!("expected a transmission");
        };
        assert!(frame.len() <= codec::MAX_FRAME_LEN);
        match codec::decode(frame).unwrap() {
            Packet::Hello { entries, .. } => {
                assert_eq!(entries.len(), codec::MAX_HELLO_ENTRIES);
            }
            other => panic!("expected hello, got {other:?}"),
        }
    }

    #[test]
    fn cad_exhaustion_drops_frame_with_event() {
        let mut n = MeshNode::new(
            MeshConfig::builder(A1)
                .region(Region::Unlimited)
                .max_cad_retries(2)
                .backoff_slot(Duration::from_millis(10))
                .hello_jitter(false)
                .build(),
        );
        let _ = n.on_start(Duration::ZERO);
        // Fire the first hello into a permanently busy channel.
        let mut now = Duration::from_secs(1);
        let mut reqs = n.on_timer(now);
        assert_eq!(reqs, vec![RadioRequest::StartCad]);
        for _ in 0..4 {
            reqs = n.on_cad_done(true, now);
            assert!(reqs.is_empty());
            if n.tx_queue_len() == 0 {
                break; // frame dropped after exhausting CAD retries
            }
            // Wait out the backoff and CAD again.
            if let Some(wake) = n.next_wake() {
                now = now.max(wake);
            }
            reqs = n.on_timer(now);
            assert_eq!(reqs, vec![RadioRequest::StartCad]);
        }
        let events = n.take_events();
        assert!(
            events.iter().any(|e| matches!(
                e,
                MeshEvent::FrameDropped {
                    kind: PacketKind::Hello
                }
            )),
            "events: {events:?}"
        );
        assert_eq!(n.stats().cad_exhausted, 1);
        assert_eq!(n.tx_queue_len(), 0);
    }

    #[test]
    fn zero_fragment_sync_is_rejected() {
        let mut n = node(A2);
        let _ = n.on_start(Duration::ZERO);
        let hello = codec::encode(&Packet::Hello {
            src: A1,
            id: 0,
            role: 0,
            entries: vec![],
        })
        .unwrap();
        let _ = n.on_frame(&hello, quality(), Duration::ZERO);
        let sync = codec::encode(&Packet::Sync {
            dst: A2,
            src: A1,
            id: 1,
            fwd: Forwarding { via: A2, ttl: 5 },
            seq: 0,
            frag_count: 0,
            total_len: 0,
        })
        .unwrap();
        let _ = n.on_frame(&sync, quality(), Duration::ZERO);
        assert_eq!(n.stats().decode_errors, 1);
        assert!(n.inbound_transfers().is_empty());
    }

    #[test]
    fn us915_dwell_limit_drops_slow_frames() {
        use lora_phy::modulation::{Bandwidth, CodingRate, LoRaModulation, SpreadingFactor};
        // SF12: a 200-byte frame lasts ~7 s, far over the 400 ms dwell.
        let mut n = MeshNode::new(
            MeshConfig::builder(A1)
                .region(Region::Us915)
                .modulation(LoRaModulation::new(
                    SpreadingFactor::Sf12,
                    Bandwidth::Khz125,
                    CodingRate::Cr4_5,
                ))
                .hello_jitter(false)
                .build(),
        );
        let _ = n.on_start(Duration::ZERO);
        let hello = codec::encode(&Packet::Hello {
            src: A2,
            id: 0,
            role: 0,
            entries: vec![],
        })
        .unwrap();
        let _ = n.on_frame(&hello, quality(), Duration::ZERO);
        n.send_datagram(A2, vec![0; 200], Duration::ZERO).unwrap();
        // Drain: hello (small, allowed) then the oversized datagram.
        let mut now = Duration::from_secs(1);
        let mut dropped = false;
        for _ in 0..10 {
            let reqs = n.on_timer(now);
            for req in reqs {
                match req {
                    RadioRequest::StartCad => {
                        let _ = n.on_cad_done(false, now);
                    }
                    RadioRequest::Transmit(_) => {
                        let _ = n.on_tx_done(now + Duration::from_millis(300));
                    }
                }
            }
            if n.take_events().iter().any(|e| {
                matches!(
                    e,
                    MeshEvent::FrameDropped {
                        kind: PacketKind::Data
                    }
                )
            }) {
                dropped = true;
                break;
            }
            now += Duration::from_secs(1);
        }
        assert!(
            dropped,
            "oversized SF12 frame must be dropped by the dwell limit"
        );
    }

    #[test]
    fn ack_for_unknown_transfer_is_ignored() {
        let mut n = node(A1);
        let _ = n.on_start(Duration::ZERO);
        let ack = codec::encode(&Packet::Ack {
            dst: A1,
            src: A2,
            id: 0,
            fwd: Forwarding { via: A1, ttl: 5 },
            seq: 9,
            index: 0,
        })
        .unwrap();
        let _ = n.on_frame(&ack, quality(), Duration::ZERO);
        assert!(n.take_events().is_empty());
        assert!(n.outbound_transfers().is_empty());
    }
}
