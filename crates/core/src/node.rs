//! Compatibility re-exports for the pre-split node module.
//!
//! The `MeshNode` state machine used to live here as a single 1 800-line
//! monolith. It is now the [`crate::stack`] module — a layered
//! MAC/routing/transport/app stack over an intra-node bus — with the
//! same public API and, bit for bit, the same behaviour (pinned by the
//! golden fingerprints in `tests/stack_refactor_diff.rs`). Existing
//! `loramesher::node::{MeshNode, MeshEvent}` paths keep working through
//! these re-exports.

pub use crate::stack::{MeshEvent, MeshNode};
