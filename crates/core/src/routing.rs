//! The distance-vector routing table.
//!
//! This is the heart of LoRaMesher: each node stores, per known
//! destination, the hop-count metric and the neighbour (`via`) through
//! which it is reached. Tables are learned entirely from the periodic
//! Hello broadcasts:
//!
//! * hearing *any* packet from a neighbour establishes (or refreshes) a
//!   direct route to it with metric 1;
//! * each entry `(dst, m)` advertised by neighbour `v` is a candidate
//!   route `dst via v` with metric `m + 1`, adopted when it is new or
//!   strictly better, and always refreshed when it comes from the
//!   neighbour we already route through (so a worsening path updates
//!   rather than sticks);
//! * entries not refreshed within the route timeout are purged.
//!
//! Metrics are capped at [`RoutingTable::INFINITY_METRIC`]; a route at or
//! beyond the cap is treated as unreachable, which bounds count-to-infinity
//! in the classic Bellman–Ford way.

use alloc::collections::BTreeMap;
use alloc::vec::Vec;
use core::time::Duration;

use crate::addr::Address;
use crate::codec::ROUTE_ENTRY_LEN;
use crate::packet::RouteEntry;

/// One route: how to reach `destination`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Route {
    /// The destination node.
    pub destination: Address,
    /// The neighbour to forward through (equals `destination` for
    /// direct neighbours).
    pub via: Address,
    /// Hop count (1 = direct neighbour).
    pub metric: u8,
    /// Role bits advertised by the destination.
    pub role: u8,
    /// When this route was last confirmed.
    pub last_seen: Duration,
    /// SNR of the last packet from the `via` neighbour, in dB (receiver
    /// side bookkeeping; 0 until measured).
    pub snr: f64,
    /// Exponentially weighted moving average of the `via` link's SNR
    /// (α = 0.25), smoothing out per-frame fading for link monitoring.
    pub snr_ewma: f64,
    /// How many times this route has been confirmed (direct routes:
    /// packets heard from the neighbour).
    pub heard_count: u64,
}

/// EWMA smoothing factor for link SNR.
const SNR_EWMA_ALPHA: f64 = 0.25;

fn ewma(old: f64, new: f64) -> f64 {
    (1.0 - SNR_EWMA_ALPHA) * old + SNR_EWMA_ALPHA * new
}

/// Route-selection policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RoutingPolicy {
    /// Break metric ties in favour of the next hop with the better
    /// last-heard SNR (requires a margin of
    /// [`RoutingPolicy::snr_hysteresis_db`] to switch, so equal-quality
    /// paths do not flap). Off by default — hop count only, as in the
    /// demo paper's prototype.
    pub snr_tiebreak: bool,
    /// Minimum SNR advantage (dB) before an equal-metric route switches.
    pub snr_hysteresis_db: f64,
}

impl Default for RoutingPolicy {
    fn default() -> Self {
        RoutingPolicy {
            snr_tiebreak: false,
            snr_hysteresis_db: 3.0,
        }
    }
}

/// A pluggable route-adoption policy: decides whether a candidate route
/// advertised by a neighbour should replace the route currently held.
///
/// The routing layer is generic over this trait with
/// [`RoutingPolicy`] — plain hop count, optionally SNR-tie-broken, as in
/// the demo paper — as the default. Implementing it is the extension
/// point for alternative metrics (ETX, battery-aware, role-weighted …)
/// without touching the table or the hello daemon.
pub trait RouteMetric {
    /// Whether the candidate route — reaching `current.destination`
    /// through `neighbour` with `candidate_metric` hops, heard at `snr`
    /// dB — is strictly preferable to the `current` route.
    ///
    /// Refresh semantics are *not* up for grabs here: a candidate from
    /// the current next hop is always followed (so worsening paths are
    /// noticed), and this method is only consulted for competing routes.
    fn prefer(&self, current: &Route, candidate_metric: u8, neighbour: Address, snr: f64) -> bool;
}

impl RouteMetric for RoutingPolicy {
    fn prefer(&self, current: &Route, candidate_metric: u8, neighbour: Address, snr: f64) -> bool {
        let better_metric = candidate_metric < current.metric;
        // Optional SNR tie-break: same hop count, audibly stronger
        // neighbour (beyond the hysteresis margin).
        let better_snr = self.snr_tiebreak
            && candidate_metric == current.metric
            && neighbour != current.via
            && snr > current.snr + self.snr_hysteresis_db;
        better_metric || better_snr
    }
}

/// The LoRaMesher routing table.
///
/// ```
/// use loramesher::routing::RoutingTable;
/// use loramesher::packet::RouteEntry;
/// use loramesher::Address;
/// use std::time::Duration;
///
/// let me = Address::new(1);
/// let neighbour = Address::new(2);
/// let mut table = RoutingTable::new();
/// // A hello from node 2 advertising a route to node 3 at 1 hop:
/// table.apply_hello(
///     me,
///     neighbour,
///     0,
///     &[RouteEntry { address: Address::new(3), metric: 1, role: 0 }],
///     5.0,
///     Duration::from_secs(10),
/// );
/// assert_eq!(table.next_hop(Address::new(2)), Some(neighbour));
/// assert_eq!(table.next_hop(Address::new(3)), Some(neighbour));
/// assert_eq!(table.route(Address::new(3)).unwrap().metric, 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct RoutingTable<M: RouteMetric = RoutingPolicy> {
    routes: BTreeMap<Address, Route>,
    policy: M,
    /// Bumped whenever the Hello-visible content of the table — the set
    /// of `(destination, metric, role)` tuples — changes. Refreshes that
    /// only touch timestamps or link statistics do not count, so an
    /// unchanged `version` guarantees [`RoutingTable::as_entries`]
    /// returns the same list and lets callers cache its encoding.
    version: u64,
}

impl RoutingTable {
    /// Metric value treated as unreachable.
    ///
    /// Bounds count-to-infinity while still admitting the deepest
    /// topologies the evaluation uses (a 24-node line has 23-hop routes).
    pub const INFINITY_METRIC: u8 = 32;

    /// An empty table with the default (hop-count-only) policy.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl<M: RouteMetric> RoutingTable<M> {
    /// An empty table with the given selection policy.
    #[must_use]
    pub fn with_policy(policy: M) -> Self {
        RoutingTable {
            routes: BTreeMap::new(),
            policy,
            version: 0,
        }
    }

    /// The Hello-content generation: unchanged between two calls if and
    /// only if no `(destination, metric, role)` tuple was added, removed
    /// or rewritten in between (timestamp/SNR refreshes don't count).
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Marks the Hello-visible content as changed.
    fn touch(&mut self) {
        self.version = self.version.wrapping_add(1);
    }

    /// The active selection policy.
    #[must_use]
    pub fn policy(&self) -> &M {
        &self.policy
    }

    /// Number of known destinations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether no destinations are known.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// The route to `dst`, if known.
    #[must_use]
    pub fn route(&self, dst: Address) -> Option<&Route> {
        self.routes.get(&dst)
    }

    /// The next hop toward `dst`, if a usable route exists.
    #[must_use]
    pub fn next_hop(&self, dst: Address) -> Option<Address> {
        self.routes
            .get(&dst)
            .filter(|r| r.metric < RoutingTable::INFINITY_METRIC)
            .map(|r| r.via)
    }

    /// Iterates over all routes in address order (deterministic).
    pub fn routes(&self) -> impl Iterator<Item = &Route> {
        self.routes.values()
    }

    /// Records that a packet was heard directly from `neighbour`,
    /// creating or refreshing its metric-1 route.
    pub fn heard_from(&mut self, neighbour: Address, snr: f64, now: Duration) {
        debug_assert!(!neighbour.is_broadcast());
        let entry = self.routes.entry(neighbour).or_insert(Route {
            destination: neighbour,
            via: neighbour,
            metric: 1,
            role: 0,
            last_seen: now,
            snr,
            snr_ewma: snr,
            heard_count: 0,
        });
        // Freshly inserted (heard_count still 0) or promoted from a
        // multi-hop metric: the Hello-visible tuple changed.
        let advertised_change = entry.heard_count == 0 || entry.metric != 1;
        // A direct observation always beats any multi-hop route.
        if entry.via != neighbour {
            // Switching from a multi-hop route: restart link statistics.
            entry.snr_ewma = snr;
        } else {
            entry.snr_ewma = ewma(entry.snr_ewma, snr);
        }
        entry.via = neighbour;
        entry.metric = 1;
        entry.last_seen = now;
        entry.snr = snr;
        entry.heard_count += 1;
        if advertised_change {
            self.touch();
        }
    }

    /// The direct neighbours (metric-1 routes) with their link statistics.
    pub fn neighbours(&self) -> impl Iterator<Item = &Route> {
        self.routes.values().filter(|r| r.metric == 1)
    }

    /// Applies a Hello broadcast heard from `neighbour` advertising
    /// `role` for itself and `entries` from its table. `me` filters out
    /// routes to ourselves. Returns the number of entries that changed.
    pub fn apply_hello(
        &mut self,
        me: Address,
        neighbour: Address,
        role: u8,
        entries: &[RouteEntry],
        snr: f64,
        now: Duration,
    ) -> usize {
        let mut changed = 0;
        self.heard_from(neighbour, snr, now);
        let mut role_changed = false;
        if let Some(r) = self.routes.get_mut(&neighbour) {
            if r.role != role {
                r.role = role;
                changed += 1;
                role_changed = true;
            }
        }
        if role_changed {
            self.touch();
        }
        for e in entries {
            if e.address == me || e.address == neighbour || e.address.is_broadcast() {
                continue;
            }
            let candidate_metric = e
                .metric
                .saturating_add(1)
                .min(RoutingTable::INFINITY_METRIC);
            match self.routes.get_mut(&e.address) {
                None => {
                    if candidate_metric < RoutingTable::INFINITY_METRIC {
                        self.routes.insert(
                            e.address,
                            Route {
                                destination: e.address,
                                via: neighbour,
                                metric: candidate_metric,
                                role: e.role,
                                last_seen: now,
                                snr,
                                snr_ewma: snr,
                                heard_count: 1,
                            },
                        );
                        changed += 1;
                        self.version = self.version.wrapping_add(1);
                    }
                }
                Some(r) => {
                    if self.policy.prefer(r, candidate_metric, neighbour, snr) {
                        // Strictly better: adopt.
                        if r.via != neighbour || r.metric != candidate_metric {
                            changed += 1;
                        }
                        if r.metric != candidate_metric || r.role != e.role {
                            self.version = self.version.wrapping_add(1);
                        }
                        if r.via != neighbour {
                            r.snr_ewma = snr; // new link: restart stats
                        } else {
                            r.snr_ewma = ewma(r.snr_ewma, snr);
                        }
                        r.via = neighbour;
                        r.metric = candidate_metric;
                        r.role = e.role;
                        r.last_seen = now;
                        r.snr = snr;
                        r.heard_count += 1;
                    } else if r.via == neighbour {
                        // Same next hop: follow the (possibly worse)
                        // metric so a degraded path is noticed. If our own
                        // next hop now reports the destination
                        // unreachable, the route is gone — remove it
                        // rather than keeping infinity clutter that would
                        // be re-advertised across the mesh.
                        if candidate_metric >= RoutingTable::INFINITY_METRIC {
                            self.routes.remove(&e.address);
                            changed += 1;
                            self.version = self.version.wrapping_add(1);
                        } else {
                            if r.metric != candidate_metric {
                                changed += 1;
                            }
                            if r.metric != candidate_metric || r.role != e.role {
                                self.version = self.version.wrapping_add(1);
                            }
                            r.metric = candidate_metric;
                            r.role = e.role;
                            r.last_seen = now;
                            r.snr_ewma = ewma(r.snr_ewma, snr);
                            r.snr = snr;
                            r.heard_count += 1;
                        }
                    }
                }
            }
        }
        changed
    }

    /// Removes routes not refreshed within `timeout` and unreachable
    /// (metric-capped) routes, returning the purged destinations.
    pub fn purge(&mut self, now: Duration, timeout: Duration) -> Vec<Address> {
        let dead: Vec<Address> = self
            .routes
            .values()
            .filter(|r| {
                now.saturating_sub(r.last_seen) >= timeout
                    || r.metric >= RoutingTable::INFINITY_METRIC
            })
            .map(|r| r.destination)
            .collect();
        for d in &dead {
            self.routes.remove(d);
        }
        if !dead.is_empty() {
            self.touch();
        }
        dead
    }

    /// Removes every route through `via` (used when a neighbour is deemed
    /// lost), returning the affected destinations.
    pub fn drop_via(&mut self, via: Address) -> Vec<Address> {
        let dead: Vec<Address> = self
            .routes
            .values()
            .filter(|r| r.via == via)
            .map(|r| r.destination)
            .collect();
        for d in &dead {
            self.routes.remove(d);
        }
        if !dead.is_empty() {
            self.touch();
        }
        dead
    }

    /// The earliest instant at which some route will time out, given the
    /// configured timeout — the node's next purge deadline.
    #[must_use]
    pub fn next_expiry(&self, timeout: Duration) -> Option<Duration> {
        self.routes.values().map(|r| r.last_seen + timeout).min()
    }

    /// The table as Hello-broadcast entries (address order).
    #[must_use]
    pub fn as_entries(&self) -> Vec<RouteEntry> {
        self.routes
            .values()
            .map(|r| RouteEntry {
                address: r.destination,
                metric: r.metric,
                role: r.role,
            })
            .collect()
    }

    /// The bytes this table occupies in a Hello frame.
    #[must_use]
    pub fn wire_size(&self) -> usize {
        self.routes.len() * ROUTE_ENTRY_LEN
    }
}

impl<M: RouteMetric> core::fmt::Display for RoutingTable<M> {
    /// A human-readable dump, one route per line:
    /// `dst via next_hop metric=N role=R snr=S age@T`.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.routes.is_empty() {
            return writeln!(f, "(no routes)");
        }
        for r in self.routes.values() {
            writeln!(
                f,
                "{} via {}  metric={:<2} role={:#04x} snr={:+.1} seen@{:.0}s",
                r.destination,
                r.via,
                r.metric,
                r.role,
                r.snr,
                r.last_seen.as_secs_f64(),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NOW: Duration = Duration::from_secs(100);
    const ME: Address = Address::new(0x0001);
    const N2: Address = Address::new(0x0002);
    const N3: Address = Address::new(0x0003);
    const N4: Address = Address::new(0x0004);

    fn entry(addr: Address, metric: u8) -> RouteEntry {
        RouteEntry {
            address: addr,
            metric,
            role: 0,
        }
    }

    /// The table is generic over [`RouteMetric`]: a custom policy slots
    /// in via [`RoutingTable::with_policy`] and changes route selection
    /// without touching refresh semantics.
    #[test]
    fn custom_route_metric_plugs_into_the_table() {
        /// Prefers the audibly loudest neighbour, hop count be damned.
        struct LoudestNeighbour;
        impl RouteMetric for LoudestNeighbour {
            fn prefer(
                &self,
                current: &Route,
                _candidate_metric: u8,
                neighbour: Address,
                snr: f64,
            ) -> bool {
                neighbour != current.via && snr > current.snr
            }
        }

        let dst = Address::new(0x0009);
        // Default policy: the 2-hop route through the quiet neighbour
        // beats the 6-hop route through the loud one.
        let mut hops = RoutingTable::new();
        hops.apply_hello(ME, N2, 0, &[entry(dst, 1)], 0.0, NOW);
        hops.apply_hello(ME, N3, 0, &[entry(dst, 5)], 20.0, NOW);
        assert_eq!(hops.next_hop(dst), Some(N2));
        assert_eq!(hops.route(dst).unwrap().metric, 2);

        // Same hellos under the custom policy: the louder neighbour
        // wins even though the path is longer.
        let mut loud = RoutingTable::with_policy(LoudestNeighbour);
        loud.apply_hello(ME, N2, 0, &[entry(dst, 1)], 0.0, NOW);
        loud.apply_hello(ME, N3, 0, &[entry(dst, 5)], 20.0, NOW);
        assert_eq!(loud.next_hop(dst), Some(N3));
        assert_eq!(loud.route(dst).unwrap().metric, 6);
    }

    #[test]
    fn heard_from_creates_direct_route() {
        let mut t = RoutingTable::new();
        t.heard_from(N2, 5.5, NOW);
        let r = t.route(N2).unwrap();
        assert_eq!(r.via, N2);
        assert_eq!(r.metric, 1);
        assert_eq!(r.snr, 5.5);
        assert_eq!(t.next_hop(N2), Some(N2));
    }

    #[test]
    fn direct_observation_beats_multi_hop() {
        let mut t = RoutingTable::new();
        // Learn N3 via N2 at 2 hops first.
        t.apply_hello(ME, N2, 0, &[entry(N3, 1)], 0.0, NOW);
        assert_eq!(t.route(N3).unwrap().metric, 2);
        // Then hear N3 directly.
        t.heard_from(N3, 1.0, NOW + Duration::from_secs(1));
        let r = t.route(N3).unwrap();
        assert_eq!(r.metric, 1);
        assert_eq!(r.via, N3);
    }

    #[test]
    fn hello_learns_and_improves_routes() {
        let mut t = RoutingTable::new();
        let changed = t.apply_hello(ME, N2, 0, &[entry(N3, 2), entry(N4, 1)], 0.0, NOW);
        assert_eq!(changed, 2);
        assert_eq!(t.route(N3).unwrap().metric, 3);
        assert_eq!(t.route(N4).unwrap().metric, 2);
        // A better path to N3 through N4.
        let changed = t.apply_hello(ME, N4, 0, &[entry(N3, 1)], 0.0, NOW);
        assert_eq!(changed, 1);
        let r = t.route(N3).unwrap();
        assert_eq!((r.via, r.metric), (N4, 2));
    }

    #[test]
    fn worse_route_from_other_neighbour_is_ignored() {
        let mut t = RoutingTable::new();
        t.apply_hello(ME, N2, 0, &[entry(N4, 1)], 0.0, NOW);
        let before = *t.route(N4).unwrap();
        let changed = t.apply_hello(ME, N3, 0, &[entry(N4, 5)], 0.0, NOW);
        assert_eq!(changed, 0);
        assert_eq!(*t.route(N4).unwrap(), before);
    }

    #[test]
    fn same_via_tracks_degradation() {
        let mut t = RoutingTable::new();
        t.apply_hello(ME, N2, 0, &[entry(N4, 1)], 0.0, NOW);
        assert_eq!(t.route(N4).unwrap().metric, 2);
        // N2 now reports N4 further away: we must follow it.
        t.apply_hello(
            ME,
            N2,
            0,
            &[entry(N4, 4)],
            0.0,
            NOW + Duration::from_secs(1),
        );
        assert_eq!(t.route(N4).unwrap().metric, 5);
    }

    #[test]
    fn routes_to_self_and_broadcast_are_ignored() {
        let mut t = RoutingTable::new();
        t.apply_hello(
            ME,
            N2,
            0,
            &[entry(ME, 3), entry(Address::BROADCAST, 1)],
            0.0,
            NOW,
        );
        assert!(t.route(ME).is_none());
        assert!(t.route(Address::BROADCAST).is_none());
        // Only the neighbour itself was learned.
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn metric_saturates_at_infinity() {
        let mut t = RoutingTable::new();
        t.apply_hello(
            ME,
            N2,
            0,
            &[entry(N3, RoutingTable::INFINITY_METRIC - 1)],
            0.0,
            NOW,
        );
        // 15 + 1 = 16 = infinity: not usable, not inserted.
        assert!(t.route(N3).is_none());
        assert_eq!(t.next_hop(N3), None);
    }

    #[test]
    fn unreachable_report_from_next_hop_removes_route() {
        let mut t = RoutingTable::new();
        t.apply_hello(ME, N2, 0, &[entry(N3, 1)], 0.0, NOW);
        assert!(t.next_hop(N3).is_some());
        // Our next hop now reports N3 unreachable: the route disappears
        // immediately instead of lingering as infinity clutter.
        let changed = t.apply_hello(
            ME,
            N2,
            0,
            &[entry(N3, RoutingTable::INFINITY_METRIC)],
            0.0,
            NOW,
        );
        assert_eq!(changed, 1);
        assert!(t.route(N3).is_none());
        // Other neighbours' unreachable reports do not touch our route.
        t.apply_hello(ME, N2, 0, &[entry(N3, 1)], 0.0, NOW);
        t.apply_hello(
            ME,
            N4,
            0,
            &[entry(N3, RoutingTable::INFINITY_METRIC)],
            0.0,
            NOW,
        );
        assert!(t.next_hop(N3).is_some());
    }

    #[test]
    fn purge_removes_stale_routes() {
        let mut t = RoutingTable::new();
        t.heard_from(N2, 0.0, NOW);
        t.heard_from(N3, 0.0, NOW + Duration::from_secs(100));
        let purged = t.purge(NOW + Duration::from_secs(650), Duration::from_secs(600));
        assert_eq!(purged, vec![N2]);
        assert!(t.route(N2).is_none());
        assert!(t.route(N3).is_some());
    }

    #[test]
    fn drop_via_removes_dependents() {
        let mut t = RoutingTable::new();
        t.apply_hello(ME, N2, 0, &[entry(N3, 1), entry(N4, 2)], 0.0, NOW);
        let dropped = t.drop_via(N2);
        assert_eq!(dropped.len(), 3); // N2 itself + N3 + N4
        assert!(t.is_empty());
    }

    #[test]
    fn next_expiry_is_earliest() {
        let mut t = RoutingTable::new();
        assert_eq!(t.next_expiry(Duration::from_secs(600)), None);
        t.heard_from(N2, 0.0, Duration::from_secs(10));
        t.heard_from(N3, 0.0, Duration::from_secs(50));
        assert_eq!(
            t.next_expiry(Duration::from_secs(600)),
            Some(Duration::from_secs(610))
        );
    }

    #[test]
    fn as_entries_round_trips_metrics() {
        let mut t = RoutingTable::new();
        t.apply_hello(ME, N2, 7, &[entry(N3, 1)], 0.0, NOW);
        let entries = t.as_entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].address, N2);
        assert_eq!(entries[0].metric, 1);
        assert_eq!(entries[0].role, 7);
        assert_eq!(entries[1].address, N3);
        assert_eq!(entries[1].metric, 2);
        assert_eq!(t.wire_size(), 2 * ROUTE_ENTRY_LEN);
    }

    #[test]
    fn snr_tiebreak_prefers_stronger_equal_metric_path() {
        let mut t = RoutingTable::with_policy(RoutingPolicy {
            snr_tiebreak: true,
            snr_hysteresis_db: 3.0,
        });
        // N4 reachable at 2 hops via N2 (weak link, -5 dB).
        t.apply_hello(ME, N2, 0, &[entry(N4, 1)], -5.0, NOW);
        assert_eq!(t.route(N4).unwrap().via, N2);
        // N3 offers the same 2-hop path over a +2 dB link: switch.
        t.apply_hello(ME, N3, 0, &[entry(N4, 1)], 2.0, NOW);
        let r = *t.route(N4).unwrap();
        assert_eq!(r.via, N3);
        assert_eq!(r.metric, 2);
        assert_eq!(r.snr, 2.0);
        // A third path only 1 dB better than the current: hysteresis
        // keeps the route stable.
        t.apply_hello(ME, Address::new(9), 0, &[entry(N4, 1)], 3.0, NOW);
        assert_eq!(t.route(N4).unwrap().via, N3);
    }

    #[test]
    fn snr_tiebreak_disabled_by_default() {
        let mut t = RoutingTable::new();
        assert!(!t.policy().snr_tiebreak);
        t.apply_hello(ME, N2, 0, &[entry(N4, 1)], -20.0, NOW);
        t.apply_hello(ME, N3, 0, &[entry(N4, 1)], 10.0, NOW);
        // Hop-count-only: the first learned route wins ties.
        assert_eq!(t.route(N4).unwrap().via, N2);
    }

    #[test]
    fn snr_refreshes_on_same_via_updates() {
        let mut t = RoutingTable::new();
        t.apply_hello(ME, N2, 0, &[entry(N4, 1)], -5.0, NOW);
        t.apply_hello(
            ME,
            N2,
            0,
            &[entry(N4, 1)],
            4.0,
            NOW + Duration::from_secs(1),
        );
        assert_eq!(t.route(N4).unwrap().snr, 4.0);
    }

    #[test]
    fn link_statistics_smooth_snr_and_count_packets() {
        let mut t = RoutingTable::new();
        t.heard_from(N2, 8.0, NOW);
        let r = t.route(N2).unwrap();
        assert_eq!(r.snr_ewma, 8.0);
        assert_eq!(r.heard_count, 1);
        // A deep fade on one frame barely moves the average.
        t.heard_from(N2, -8.0, NOW + Duration::from_secs(1));
        let r = t.route(N2).unwrap();
        assert_eq!(r.snr, -8.0);
        assert!((r.snr_ewma - 4.0).abs() < 1e-12, "ewma {}", r.snr_ewma);
        assert_eq!(r.heard_count, 2);
    }

    #[test]
    fn neighbours_lists_only_direct_routes() {
        let mut t = RoutingTable::new();
        t.apply_hello(ME, N2, 0, &[entry(N3, 1)], 5.0, NOW);
        let direct: Vec<Address> = t.neighbours().map(|r| r.destination).collect();
        assert_eq!(direct, vec![N2]);
    }

    #[test]
    fn via_switch_restarts_link_statistics() {
        let mut t = RoutingTable::new();
        // Route to N4 via N2 with poor SNR...
        t.apply_hello(ME, N2, 0, &[entry(N4, 2)], -10.0, NOW);
        // ...replaced by a strictly better path via N3: stats restart.
        t.apply_hello(ME, N3, 0, &[entry(N4, 1)], 6.0, NOW);
        let r = t.route(N4).unwrap();
        assert_eq!(r.via, N3);
        assert_eq!(r.snr_ewma, 6.0);
    }

    #[test]
    fn display_lists_routes() {
        let mut t = RoutingTable::new();
        assert_eq!(t.to_string(), "(no routes)\n");
        t.apply_hello(ME, N2, 0, &[entry(N3, 1)], 4.5, NOW);
        let s = t.to_string();
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("0002 via 0002"), "{s}");
        assert!(s.contains("0003 via 0002"), "{s}");
        assert!(s.contains("metric=2"), "{s}");
    }

    #[test]
    fn version_tracks_hello_visible_changes_only() {
        let mut t = RoutingTable::new();
        let v0 = t.version();
        // New direct route: bump.
        t.heard_from(N2, 0.0, NOW);
        let v1 = t.version();
        assert_ne!(v1, v0);
        // Pure refresh (same metric, same role): no bump.
        t.heard_from(N2, 3.0, NOW + Duration::from_secs(1));
        assert_eq!(t.version(), v1);
        let same = [entry(N3, 1)];
        // New multi-hop route: bump.
        t.apply_hello(ME, N2, 0, &same, 0.0, NOW + Duration::from_secs(2));
        let v2 = t.version();
        assert_ne!(v2, v1);
        // Identical re-advertisement: timestamps move, content doesn't.
        t.apply_hello(ME, N2, 0, &same, 0.0, NOW + Duration::from_secs(3));
        assert_eq!(t.version(), v2);
        // Same-via metric degradation: bump.
        t.apply_hello(
            ME,
            N2,
            0,
            &[entry(N3, 4)],
            0.0,
            NOW + Duration::from_secs(4),
        );
        let v3 = t.version();
        assert_ne!(v3, v2);
        // Role change on an existing entry: bump.
        t.apply_hello(
            ME,
            N2,
            0,
            &[entry(N3, 4)],
            0.0,
            NOW + Duration::from_secs(5),
        );
        assert_eq!(t.version(), v3);
        t.apply_hello(
            ME,
            N2,
            0,
            &[RouteEntry {
                address: N3,
                metric: 4,
                role: 9,
            }],
            0.0,
            NOW + Duration::from_secs(6),
        );
        let v4 = t.version();
        assert_ne!(v4, v3);
        // Purge with nothing stale: no bump.
        assert!(t
            .purge(NOW + Duration::from_secs(7), Duration::from_secs(600))
            .is_empty());
        assert_eq!(t.version(), v4);
        // Purge that removes routes: bump.
        assert!(!t
            .purge(NOW + Duration::from_secs(900), Duration::from_secs(600))
            .is_empty());
        assert_ne!(t.version(), v4);
    }

    #[test]
    fn version_bumps_on_neighbour_role_change_and_drop_via() {
        let mut t = RoutingTable::new();
        t.apply_hello(ME, N2, 0, &[entry(N3, 1)], 0.0, NOW);
        let v = t.version();
        // Neighbour's own role flips: bump even with unchanged entries.
        t.apply_hello(ME, N2, 5, &[entry(N3, 1)], 0.0, NOW);
        let v2 = t.version();
        assert_ne!(v2, v);
        // Dropping a via removes routes: bump.
        t.drop_via(N2);
        assert_ne!(t.version(), v2);
        // drop_via on an empty table: no bump.
        let v3 = t.version();
        t.drop_via(N2);
        assert_eq!(t.version(), v3);
    }

    #[test]
    fn role_updates_count_as_changes() {
        let mut t = RoutingTable::new();
        assert_eq!(t.apply_hello(ME, N2, 0, &[], 0.0, NOW), 0);
        assert_eq!(t.apply_hello(ME, N2, 1, &[], 0.0, NOW), 1);
        assert_eq!(t.route(N2).unwrap().role, 1);
    }
}
