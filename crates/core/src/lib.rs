//! `loramesher` — a Rust implementation of the LoRaMesher mesh protocol.
//!
//! LoRaMesher (Solé, Miralles, Centelles, Freitag — ICDCS 2022 demo) is a
//! library that runs on LoRa IoT nodes and forms a mesh network among
//! them: every node periodically broadcasts its routing table, a
//! distance-vector protocol builds multi-hop routes from those broadcasts,
//! and data packets are forwarded hop by hop with every node acting as a
//! router. On top of the datagram service a reliable transfer protocol
//! moves payloads larger than a single LoRa frame.
//!
//! This crate is **sans-IO**: [`MeshNode`] is a pure state machine driven
//! through the [`driver::NodeProtocol`] interface — feed it received
//! frames, timer expirations and radio completions via callbacks; it
//! pushes radio requests (transmit / channel-activity-detection) into
//! the per-callback [`driver::RadioIo`] context. The same state machine
//! runs unchanged under the `radio-sim` discrete-event simulator and
//! could be dropped onto real SX127x hardware behind a thin shim — the
//! crate builds without `std` (`--no-default-features`, requires
//! `alloc`).
//!
//! # Module map
//!
//! * [`addr`] — 16-bit node addresses.
//! * [`cast`] — checked narrowing conversions (meshlint rule C1).
//! * [`packet`] — the packet types of the protocol.
//! * [`codec`] — the compact wire format (7–12 byte headers).
//! * [`routing`] — the distance-vector routing table, generic over the
//!   [`routing::RouteMetric`] route-preference policy.
//! * [`config`] — [`MeshConfig`] and its builder.
//! * [`queue`] — the prioritised transmit queue.
//! * [`mac`] — CAD-based listen-before-talk with exponential backoff and
//!   duty-cycle gating.
//! * [`reliable`] — the large-payload transfer state machines.
//! * [`stack`] — [`MeshNode`]: the MAC/routing/transport/app layers tied
//!   together over the intra-node bus.
//! * [`flood`] — [`FloodNode`]: Meshtastic-style managed flooding as a
//!   second first-class stack over the same bus and MAC.
//! * [`protocol`] — the [`Protocol`] abstraction hosts use to pick a
//!   stack by name.
//! * [`driver`] — the sans-IO host interface.
//! * [`stats`] — per-node protocol counters.
//! * [`error`] — error types.
//!
//! # Example
//!
//! ```
//! use loramesher::{Address, MeshConfig, MeshNode};
//! use loramesher::driver::{NodeProtocol, RadioIo};
//! use std::time::Duration;
//!
//! let config = MeshConfig::builder(Address::new(0x0001)).build();
//! let mut node = MeshNode::new(config);
//! // Starting the node schedules its first routing broadcast.
//! let mut io = RadioIo::new(Duration::ZERO);
//! node.on_start(&mut io);
//! assert!(io.take_requests().is_empty());
//! assert!(node.next_wake().is_some());
//! ```

#![cfg_attr(not(feature = "std"), no_std)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

extern crate alloc;

pub mod addr;
pub mod cast;
pub mod codec;
pub mod config;
pub mod driver;
pub mod error;
pub mod flood;
pub mod mac;
pub mod node;
pub mod packet;
pub mod protocol;
pub mod queue;
pub mod reliable;
pub mod rng;
pub mod role;
pub mod routing;
pub mod stack;
pub mod stats;

pub use addr::Address;
pub use config::{MeshConfig, MeshConfigBuilder};
pub use driver::{NodeProtocol, RadioIo, RadioRequest};
pub use error::{CodecError, SendError};
pub use flood::{FloodConfig, FloodMessage, FloodNode, FloodStats};
pub use packet::{Packet, PacketKind};
pub use protocol::Protocol;
pub use role::{Role, RoleQueries};
pub use routing::{Route, RoutingTable};
pub use stack::{MeshEvent, MeshNode};
pub use stats::NodeStats;
