//! Reliable large-payload transfer.
//!
//! Payloads larger than one LoRa frame travel through a stop-and-wait
//! sub-protocol: the sender opens the transfer with a `Sync` (fragment
//! count and total length), the receiver acknowledges it, and each
//! fragment is then sent and individually acknowledged. Missing
//! acknowledgements trigger retransmission up to a retry budget; the
//! receiver can additionally request specific fragments with `Lost`
//! (useful when a reordering transport is in play). Either side abandons
//! the transfer after the configured patience runs out.
//!
//! The two state machines here are packet-agnostic: they decide *what*
//! should happen ([`SenderAction`], [`ReceiverAction`]) and
//! [`crate::MeshNode`] turns that into packets, routing and queueing.

use alloc::vec;
use alloc::vec::Vec;
use core::time::Duration;

use crate::addr::Address;
use crate::packet::SYNC_ACK_INDEX;

/// Why an outbound transfer ended unsuccessfully.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbortReason {
    /// The retry budget was exhausted waiting for an acknowledgement.
    RetriesExhausted,
}

/// What the sender side wants to do next.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SenderAction {
    /// Nothing to do.
    None,
    /// (Re)send the Sync handshake.
    SendSync,
    /// (Re)send fragment `index`.
    SendFrag(u16),
    /// All fragments acknowledged — the transfer succeeded.
    Completed,
    /// The transfer failed.
    Aborted(AbortReason),
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum OutState {
    /// Waiting for the Sync acknowledgement.
    AwaitSyncAck,
    /// Waiting for the acknowledgement of fragment `index`.
    AwaitFragAck(u16),
    /// Finished (success or abort).
    Done,
}

/// Observable phase of an outbound transfer (diagnostics / UIs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferPhase {
    /// Waiting for the Sync acknowledgement.
    AwaitingSyncAck,
    /// Waiting for the acknowledgement of this fragment.
    AwaitingFragAck(u16),
    /// Finished.
    Done,
}

/// Sender side of one reliable transfer.
#[derive(Clone, Debug)]
pub struct OutboundTransfer {
    /// The destination node.
    pub dst: Address,
    /// The transfer's sequence id.
    pub seq: u8,
    fragments: Vec<Vec<u8>>,
    total_len: u32,
    state: OutState,
    retries: u32,
    max_retries: u32,
    timeout: Duration,
    deadline: Option<Duration>,
    /// Fragment retransmissions performed.
    pub retransmits: u32,
}

impl OutboundTransfer {
    /// Splits `payload` into fragments of at most `max_frag` bytes.
    /// An empty payload travels as one empty fragment, and a zero
    /// `max_frag` is clamped to one byte — degenerate inputs make a
    /// slow transfer, not a crash.
    #[must_use]
    pub fn new(
        dst: Address,
        seq: u8,
        payload: &[u8],
        max_frag: usize,
        timeout: Duration,
        max_retries: u32,
    ) -> Self {
        let max_frag = max_frag.max(1);
        let fragments = if payload.is_empty() {
            vec![Vec::new()]
        } else {
            payload.chunks(max_frag).map(<[u8]>::to_vec).collect()
        };
        OutboundTransfer {
            dst,
            seq,
            fragments,
            total_len: payload.len() as u32,
            state: OutState::AwaitSyncAck,
            retries: 0,
            max_retries,
            timeout,
            deadline: None,
            retransmits: 0,
        }
    }

    /// Number of fragments.
    #[must_use]
    pub fn frag_count(&self) -> u16 {
        crate::cast::sat_u16(self.fragments.len())
    }

    /// Total payload length in bytes.
    #[must_use]
    pub fn total_len(&self) -> u32 {
        self.total_len
    }

    /// The bytes of fragment `index`; empty when `index` is out of
    /// range (the state machine only ever asks for indices it minted).
    #[must_use]
    pub fn fragment(&self, index: u16) -> &[u8] {
        self.fragments
            .get(usize::from(index))
            .map_or(&[], Vec::as_slice)
    }

    /// Whether the transfer has finished (successfully or not).
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.state == OutState::Done
    }

    /// The current phase (diagnostics).
    #[must_use]
    pub fn phase(&self) -> TransferPhase {
        match self.state {
            OutState::AwaitSyncAck => TransferPhase::AwaitingSyncAck,
            OutState::AwaitFragAck(i) => TransferPhase::AwaitingFragAck(i),
            OutState::Done => TransferPhase::Done,
        }
    }

    /// The next acknowledgement deadline, while one is pending.
    #[must_use]
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Starts the transfer: emits the Sync and arms its timeout.
    #[must_use]
    pub fn start(&mut self, now: Duration) -> SenderAction {
        self.deadline = Some(now + self.timeout);
        SenderAction::SendSync
    }

    /// Handles an incoming acknowledgement for `index`
    /// ([`SYNC_ACK_INDEX`] acknowledges the handshake).
    #[must_use]
    pub fn on_ack(&mut self, index: u16, now: Duration) -> SenderAction {
        match self.state {
            OutState::AwaitSyncAck if index == SYNC_ACK_INDEX => {
                self.state = OutState::AwaitFragAck(0);
                self.retries = 0;
                self.deadline = Some(now + self.timeout);
                SenderAction::SendFrag(0)
            }
            OutState::AwaitFragAck(expected) if index == expected => {
                let next = expected + 1;
                if next == self.frag_count() {
                    self.state = OutState::Done;
                    self.deadline = None;
                    SenderAction::Completed
                } else {
                    self.state = OutState::AwaitFragAck(next);
                    self.retries = 0;
                    self.deadline = Some(now + self.timeout);
                    SenderAction::SendFrag(next)
                }
            }
            // Duplicate or stale acknowledgement: ignore.
            _ => SenderAction::None,
        }
    }

    /// Handles a `Lost` request listing missing fragment indices: the
    /// transfer rewinds to the earliest missing fragment.
    #[must_use]
    pub fn on_lost(&mut self, missing: &[u16], now: Duration) -> SenderAction {
        let Some(&first) = missing.iter().min() else {
            return SenderAction::None;
        };
        if first >= self.frag_count() || self.state == OutState::Done {
            return SenderAction::None;
        }
        self.state = OutState::AwaitFragAck(first);
        self.retries = 0;
        self.retransmits += 1;
        self.deadline = Some(now + self.timeout);
        SenderAction::SendFrag(first)
    }

    /// Pushes the pending acknowledgement deadline out by `extra`.
    ///
    /// The node adds a random extra after every (re)arm: with fixed
    /// timeouts, a sender's retransmissions and the receiver's stall
    /// requests phase-lock after one hidden-terminal collision and then
    /// collide at the relay on every retry. Jitter breaks the symmetry.
    pub fn defer_deadline(&mut self, extra: Duration) {
        if let Some(d) = self.deadline {
            self.deadline = Some(d + extra);
        }
    }

    /// Handles the acknowledgement deadline expiring: retransmits the
    /// outstanding packet or aborts once the retry budget is spent.
    #[must_use]
    pub fn on_timeout(&mut self, now: Duration) -> SenderAction {
        let resend = match self.state {
            OutState::AwaitSyncAck => SenderAction::SendSync,
            OutState::AwaitFragAck(i) => SenderAction::SendFrag(i),
            OutState::Done => return SenderAction::None,
        };
        self.retries += 1;
        if self.retries > self.max_retries {
            self.state = OutState::Done;
            self.deadline = None;
            return SenderAction::Aborted(AbortReason::RetriesExhausted);
        }
        self.retransmits += 1;
        self.deadline = Some(now + self.timeout);
        resend
    }
}

/// What the receiver side wants to do next.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReceiverAction {
    /// Acknowledge the Sync handshake.
    AckSync,
    /// Acknowledge fragment `index`.
    AckFrag(u16),
    /// All fragments arrived: deliver the reassembled payload.
    Complete(Vec<u8>),
}

/// Receiver side of one reliable transfer.
#[derive(Clone, Debug)]
pub struct InboundTransfer {
    /// The sending node.
    pub src: Address,
    /// The transfer's sequence id.
    pub seq: u8,
    fragments: Vec<Option<Vec<u8>>>,
    total_len: u32,
    /// Last time a packet of this transfer arrived (for expiry).
    pub last_activity: Duration,
    delivered: bool,
    last_lost: Duration,
    lost_requests: u32,
}

impl InboundTransfer {
    /// Opens a transfer announced by a Sync packet. A zero `frag_count`
    /// (the node drops such Syncs, but a corrupt sender could still
    /// claim one) is clamped to a single fragment.
    #[must_use]
    pub fn new(src: Address, seq: u8, frag_count: u16, total_len: u32, now: Duration) -> Self {
        let frag_count = frag_count.max(1);
        InboundTransfer {
            src,
            seq,
            fragments: vec![None; usize::from(frag_count)],
            total_len,
            last_activity: now,
            delivered: false,
            last_lost: now,
            lost_requests: 0,
        }
    }

    /// Whether the payload was already delivered (late duplicates are
    /// still acknowledged, but not delivered twice).
    #[must_use]
    pub fn is_delivered(&self) -> bool {
        self.delivered
    }

    /// Handles a (possibly duplicate) Sync for this transfer.
    #[must_use]
    pub fn on_sync(&mut self, now: Duration) -> ReceiverAction {
        self.last_activity = now;
        ReceiverAction::AckSync
    }

    /// Handles fragment `index`, returning the actions to take in order
    /// (always an ack; plus delivery when the payload completes).
    #[must_use]
    pub fn on_frag(&mut self, index: u16, data: &[u8], now: Duration) -> Vec<ReceiverAction> {
        self.last_activity = now;
        let mut actions = Vec::with_capacity(2);
        let Some(slot) = self.fragments.get_mut(usize::from(index)) else {
            // Out-of-range fragment: ignore entirely (corrupt sender).
            return actions;
        };
        if slot.is_none() {
            *slot = Some(data.to_vec());
        }
        actions.push(ReceiverAction::AckFrag(index));
        if !self.delivered && self.fragments.iter().all(Option::is_some) {
            let mut payload = Vec::with_capacity(self.total_len as usize);
            for f in self.fragments.iter().flatten() {
                payload.extend_from_slice(f);
            }
            // A length mismatch means the sender lied in its Sync; deliver
            // what arrived — the application sees the actual bytes.
            self.delivered = true;
            actions.push(ReceiverAction::Complete(payload));
        }
        actions
    }

    /// Whether the transfer has stalled: it is incomplete, has received at
    /// least one fragment, and nothing has arrived (nor a `Lost` been
    /// sent) for `patience`. Used by the node to issue a `Lost` request
    /// nudging the sender.
    #[must_use]
    pub fn stalled(&self, now: Duration, patience: Duration) -> bool {
        !self.delivered
            && now.saturating_sub(self.last_activity) >= patience
            && now.saturating_sub(self.last_lost) >= patience
    }

    /// Records that a `Lost` request was sent (paces further requests).
    pub fn note_lost_sent(&mut self, now: Duration) {
        self.last_lost = now;
        self.lost_requests += 1;
    }

    /// How many `Lost` requests this transfer has issued.
    #[must_use]
    pub fn lost_requests(&self) -> u32 {
        self.lost_requests
    }

    /// When this transfer will next count as stalled, or `None` once it
    /// has been delivered.
    #[must_use]
    pub fn stall_deadline(&self, patience: Duration) -> Option<Duration> {
        if self.delivered {
            None
        } else {
            Some(self.last_activity.max(self.last_lost) + patience)
        }
    }

    /// Number of fragments received so far (diagnostics).
    #[must_use]
    pub fn received_count(&self) -> usize {
        self.fragments.iter().filter(|f| f.is_some()).count()
    }

    /// The indices still missing (for a `Lost` request).
    #[must_use]
    pub fn missing(&self) -> Vec<u16> {
        self.fragments
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_none())
            .map(|(i, _)| crate::cast::sat_u16(i))
            .collect()
    }

    /// Whether the transfer has been idle since before `now - timeout`.
    #[must_use]
    pub fn expired(&self, now: Duration, timeout: Duration) -> bool {
        now.saturating_sub(self.last_activity) >= timeout
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DST: Address = Address::new(9);
    const SRC: Address = Address::new(3);
    const T0: Duration = Duration::from_secs(10);
    const TIMEOUT: Duration = Duration::from_secs(8);

    fn outbound(payload_len: usize, max_frag: usize) -> OutboundTransfer {
        let payload: Vec<u8> = (0..payload_len).map(|i| i as u8).collect();
        OutboundTransfer::new(DST, 1, &payload, max_frag, TIMEOUT, 3)
    }

    #[test]
    fn fragments_split_exactly() {
        let t = outbound(250, 100);
        assert_eq!(t.frag_count(), 3);
        assert_eq!(t.fragment(0).len(), 100);
        assert_eq!(t.fragment(2).len(), 50);
        assert_eq!(t.total_len(), 250);
        let t = outbound(200, 100);
        assert_eq!(t.frag_count(), 2);
    }

    #[test]
    fn happy_path_walks_all_fragments() {
        let mut t = outbound(250, 100);
        assert_eq!(t.start(T0), SenderAction::SendSync);
        assert_eq!(t.on_ack(SYNC_ACK_INDEX, T0), SenderAction::SendFrag(0));
        assert_eq!(t.on_ack(0, T0), SenderAction::SendFrag(1));
        assert_eq!(t.on_ack(1, T0), SenderAction::SendFrag(2));
        assert_eq!(t.on_ack(2, T0), SenderAction::Completed);
        assert!(t.is_done());
        assert_eq!(t.deadline(), None);
        assert_eq!(t.retransmits, 0);
    }

    #[test]
    fn duplicate_and_stale_acks_ignored() {
        let mut t = outbound(250, 100);
        let _ = t.start(T0);
        let _ = t.on_ack(SYNC_ACK_INDEX, T0);
        assert_eq!(t.on_ack(SYNC_ACK_INDEX, T0), SenderAction::None);
        assert_eq!(t.on_ack(5, T0), SenderAction::None);
        let _ = t.on_ack(0, T0);
        assert_eq!(t.on_ack(0, T0), SenderAction::None);
    }

    #[test]
    fn timeout_retransmits_then_aborts() {
        let mut t = outbound(100, 100);
        let _ = t.start(T0);
        assert_eq!(t.on_timeout(T0 + TIMEOUT), SenderAction::SendSync);
        assert_eq!(t.on_timeout(T0 + TIMEOUT * 2), SenderAction::SendSync);
        assert_eq!(t.on_timeout(T0 + TIMEOUT * 3), SenderAction::SendSync);
        assert_eq!(
            t.on_timeout(T0 + TIMEOUT * 4),
            SenderAction::Aborted(AbortReason::RetriesExhausted)
        );
        assert!(t.is_done());
        assert_eq!(t.on_timeout(T0 + TIMEOUT * 5), SenderAction::None);
        assert_eq!(t.retransmits, 3);
    }

    #[test]
    fn ack_resets_retry_budget() {
        let mut t = outbound(250, 100);
        let _ = t.start(T0);
        let _ = t.on_timeout(T0 + TIMEOUT);
        let _ = t.on_timeout(T0 + TIMEOUT * 2);
        // The sync finally gets through.
        assert_eq!(
            t.on_ack(SYNC_ACK_INDEX, T0 + TIMEOUT * 2),
            SenderAction::SendFrag(0)
        );
        // Fresh budget: three more timeouts before aborting.
        let mut aborts = 0;
        for k in 3..=6 {
            if matches!(t.on_timeout(T0 + TIMEOUT * k), SenderAction::Aborted(_)) {
                aborts += 1;
            }
        }
        assert_eq!(aborts, 1);
    }

    #[test]
    fn lost_rewinds_to_first_missing() {
        let mut t = outbound(500, 100);
        let _ = t.start(T0);
        let _ = t.on_ack(SYNC_ACK_INDEX, T0);
        let _ = t.on_ack(0, T0);
        let _ = t.on_ack(1, T0);
        assert_eq!(t.on_lost(&[1, 3], T0), SenderAction::SendFrag(1));
        // Continue from there.
        assert_eq!(t.on_ack(1, T0), SenderAction::SendFrag(2));
        assert_eq!(t.on_lost(&[], T0), SenderAction::None);
        assert_eq!(t.on_lost(&[99], T0), SenderAction::None);
    }

    #[test]
    fn deadline_tracks_pending_ack() {
        let mut t = outbound(100, 100);
        assert_eq!(t.deadline(), None);
        let _ = t.start(T0);
        assert_eq!(t.deadline(), Some(T0 + TIMEOUT));
        let _ = t.on_ack(SYNC_ACK_INDEX, T0 + Duration::from_secs(1));
        assert_eq!(t.deadline(), Some(T0 + Duration::from_secs(1) + TIMEOUT));
    }

    #[test]
    fn empty_payload_is_one_empty_fragment() {
        let mut t = OutboundTransfer::new(DST, 0, &[], 100, TIMEOUT, 3);
        assert_eq!(t.frag_count(), 1);
        assert_eq!(t.fragment(0), &[] as &[u8]);
        assert_eq!(t.total_len(), 0);
        let _ = t.start(T0);
        let _ = t.on_ack(SYNC_ACK_INDEX, T0);
        assert_eq!(t.on_ack(0, T0), SenderAction::Completed);
    }

    #[test]
    fn out_of_range_fragment_is_empty() {
        let t = outbound(100, 100);
        assert_eq!(t.fragment(7), &[] as &[u8]);
    }

    #[test]
    fn inbound_happy_path() {
        let mut t = InboundTransfer::new(SRC, 1, 3, 250, T0);
        assert_eq!(t.on_sync(T0), ReceiverAction::AckSync);
        let a = t.on_frag(0, &[1; 100], T0);
        assert_eq!(a, vec![ReceiverAction::AckFrag(0)]);
        let a = t.on_frag(1, &[2; 100], T0);
        assert_eq!(a, vec![ReceiverAction::AckFrag(1)]);
        let a = t.on_frag(2, &[3; 50], T0);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0], ReceiverAction::AckFrag(2));
        match &a[1] {
            ReceiverAction::Complete(p) => {
                assert_eq!(p.len(), 250);
                assert_eq!(&p[..100], &[1; 100]);
                assert_eq!(&p[200..], &[3; 50]);
            }
            other => panic!("expected Complete, got {other:?}"),
        }
        assert!(t.is_delivered());
    }

    #[test]
    fn inbound_duplicate_frag_reacked_not_redelivered() {
        let mut t = InboundTransfer::new(SRC, 1, 1, 10, T0);
        let a = t.on_frag(0, &[9; 10], T0);
        assert_eq!(a.len(), 2);
        // Duplicate: ack again, no second Complete.
        let a = t.on_frag(0, &[9; 10], T0);
        assert_eq!(a, vec![ReceiverAction::AckFrag(0)]);
    }

    #[test]
    fn inbound_out_of_range_frag_ignored() {
        let mut t = InboundTransfer::new(SRC, 1, 2, 20, T0);
        assert!(t.on_frag(7, &[0; 10], T0).is_empty());
        assert_eq!(t.missing(), vec![0, 1]);
    }

    #[test]
    fn inbound_missing_and_expiry() {
        let mut t = InboundTransfer::new(SRC, 1, 3, 30, T0);
        let _ = t.on_frag(1, &[0; 10], T0 + Duration::from_secs(1));
        assert_eq!(t.missing(), vec![0, 2]);
        assert!(!t.expired(T0 + Duration::from_secs(60), Duration::from_secs(120)));
        assert!(t.expired(T0 + Duration::from_secs(200), Duration::from_secs(120)));
    }

    #[test]
    fn inbound_zero_fragments_clamps_to_one() {
        let mut t = InboundTransfer::new(SRC, 1, 0, 0, T0);
        assert_eq!(t.missing(), vec![0]);
        let a = t.on_frag(0, &[], T0);
        assert_eq!(a.len(), 2, "empty payload still completes");
        assert!(t.is_delivered());
    }
}
