//! The compact binary wire format.
//!
//! Matching the C++ library's packed structs, every frame starts with a
//! 7-byte common header; unicast kinds add a 3-byte forwarding extension:
//!
//! ```text
//! offset  0        2        4      5    6       7
//!         +--------+--------+------+----+-------+----------------------
//!         | dst LE | src LE | kind | id | plen  | payload (plen bytes)
//!         +--------+--------+------+----+-------+----------------------
//!
//! unicast payload:   via LE (2) | ttl (1) | kind-specific body
//! Hello payload:     role (1)   | entries: [addr LE (2) | metric | role] *
//! Data body:         application bytes
//! Sync body:         seq (1) | frag_count LE (2) | total_len LE (4)
//! Frag body:         seq (1) | index LE (2) | fragment bytes
//! Ack body:          seq (1) | index LE (2)
//! Lost body:         seq (1) | missing: index LE (2) *
//! ```
//!
//! `plen` counts every byte after the common header, so a frame is always
//! `7 + plen ≤ 255` bytes and the length is verifiable on receipt.

use crate::addr::Address;
use crate::error::CodecError;
use crate::packet::{Forwarding, Packet, PacketKind, RouteEntry};

/// Size of the common header present in every frame.
pub const COMMON_HEADER_LEN: usize = 7;
/// Size of the forwarding extension in unicast frames.
pub const FORWARDING_LEN: usize = 3;
/// Total header overhead of a Data frame.
pub const DATA_OVERHEAD: usize = COMMON_HEADER_LEN + FORWARDING_LEN;
/// Bytes each routing entry occupies in a Hello frame.
pub const ROUTE_ENTRY_LEN: usize = 4;
/// Largest encoded frame (the LoRa PHY limit).
pub const MAX_FRAME_LEN: usize = 255;
/// Largest `plen` value (frame minus common header).
pub const MAX_PAYLOAD_LEN: usize = MAX_FRAME_LEN - COMMON_HEADER_LEN;
/// Largest application payload of a single Data frame.
pub const MAX_DATA_PAYLOAD: usize = MAX_FRAME_LEN - DATA_OVERHEAD;
/// Header overhead of a Frag frame (forwarding + seq + index).
pub const FRAG_OVERHEAD: usize = DATA_OVERHEAD + 3;
/// Largest fragment body of a reliable transfer.
pub const MAX_FRAG_PAYLOAD: usize = MAX_FRAME_LEN - FRAG_OVERHEAD;
/// Largest number of routing entries a single Hello frame can carry.
pub const MAX_HELLO_ENTRIES: usize = (MAX_PAYLOAD_LEN - 1) / ROUTE_ENTRY_LEN;

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn get_u16(buf: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([buf[at], buf[at + 1]])
}

fn get_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]])
}

/// Encodes a packet into its wire representation.
///
/// ```
/// use loramesher::codec::{decode, encode};
/// use loramesher::packet::{Forwarding, Packet};
/// use loramesher::Address;
///
/// let packet = Packet::Data {
///     dst: Address::new(2),
///     src: Address::new(1),
///     id: 0,
///     fwd: Forwarding { via: Address::new(2), ttl: 10 },
///     payload: b"sensor reading".to_vec(),
/// };
/// let wire = encode(&packet)?;
/// assert_eq!(decode(&wire)?, packet);
/// # Ok::<(), loramesher::CodecError>(())
/// ```
///
/// # Errors
///
/// Returns [`CodecError::FrameTooLarge`] when the encoded frame would
/// exceed the 255-byte PHY limit.
pub fn encode(packet: &Packet) -> Result<Vec<u8>, CodecError> {
    let mut buf = Vec::with_capacity(64);
    put_u16(&mut buf, packet.dst().value());
    put_u16(&mut buf, packet.src().value());
    buf.push(packet.kind() as u8);
    buf.push(packet.id());
    buf.push(0); // plen patched below

    if let Some(Forwarding { via, ttl }) = packet.forwarding() {
        put_u16(&mut buf, via.value());
        buf.push(ttl);
    }

    match packet {
        Packet::Hello { role, entries, .. } => {
            buf.push(*role);
            for e in entries {
                put_u16(&mut buf, e.address.value());
                buf.push(e.metric);
                buf.push(e.role);
            }
        }
        Packet::Data { payload, .. } => buf.extend_from_slice(payload),
        Packet::Sync {
            seq,
            frag_count,
            total_len,
            ..
        } => {
            buf.push(*seq);
            put_u16(&mut buf, *frag_count);
            put_u32(&mut buf, *total_len);
        }
        Packet::Frag {
            seq, index, data, ..
        } => {
            buf.push(*seq);
            put_u16(&mut buf, *index);
            buf.extend_from_slice(data);
        }
        Packet::Ack { seq, index, .. } => {
            buf.push(*seq);
            put_u16(&mut buf, *index);
        }
        Packet::Lost { seq, missing, .. } => {
            buf.push(*seq);
            for m in missing {
                put_u16(&mut buf, *m);
            }
        }
    }

    if buf.len() > MAX_FRAME_LEN {
        return Err(CodecError::FrameTooLarge(buf.len()));
    }
    buf[6] = (buf.len() - COMMON_HEADER_LEN) as u8;
    Ok(buf)
}

/// Decodes a wire frame into a packet.
///
/// # Errors
///
/// Returns a [`CodecError`] when the frame is truncated, declares a wrong
/// length, uses an unknown kind, or carries a malformed payload.
pub fn decode(frame: &[u8]) -> Result<Packet, CodecError> {
    if frame.len() < COMMON_HEADER_LEN {
        return Err(CodecError::Truncated {
            needed: COMMON_HEADER_LEN,
            got: frame.len(),
        });
    }
    let dst = Address::new(get_u16(frame, 0));
    let src = Address::new(get_u16(frame, 2));
    let kind = PacketKind::from_wire(frame[4]).ok_or(CodecError::UnknownKind(frame[4]))?;
    let id = frame[5];
    let declared = frame[6] as usize;
    let actual = frame.len() - COMMON_HEADER_LEN;
    if declared != actual {
        return Err(CodecError::LengthMismatch { declared, actual });
    }
    let body = &frame[COMMON_HEADER_LEN..];

    if kind == PacketKind::Hello {
        if body.is_empty() || !(body.len() - 1).is_multiple_of(ROUTE_ENTRY_LEN) {
            return Err(CodecError::MalformedRoutingPayload);
        }
        let role = body[0];
        let entries = body[1..]
            .chunks_exact(ROUTE_ENTRY_LEN)
            .map(|c| RouteEntry {
                address: Address::new(u16::from_le_bytes([c[0], c[1]])),
                metric: c[2],
                role: c[3],
            })
            .collect();
        return Ok(Packet::Hello {
            src,
            id,
            role,
            entries,
        });
    }

    // All remaining kinds carry the forwarding extension.
    if body.len() < FORWARDING_LEN {
        return Err(CodecError::Truncated {
            needed: COMMON_HEADER_LEN + FORWARDING_LEN,
            got: frame.len(),
        });
    }
    let fwd = Forwarding {
        via: Address::new(u16::from_le_bytes([body[0], body[1]])),
        ttl: body[2],
    };
    let rest = &body[FORWARDING_LEN..];

    let need = |n: usize| -> Result<(), CodecError> {
        if rest.len() < n {
            Err(CodecError::Truncated {
                needed: COMMON_HEADER_LEN + FORWARDING_LEN + n,
                got: frame.len(),
            })
        } else {
            Ok(())
        }
    };

    match kind {
        PacketKind::Hello => unreachable!("handled above"),
        PacketKind::Data => Ok(Packet::Data {
            dst,
            src,
            id,
            fwd,
            payload: rest.to_vec(),
        }),
        PacketKind::Sync => {
            need(7)?;
            Ok(Packet::Sync {
                dst,
                src,
                id,
                fwd,
                seq: rest[0],
                frag_count: get_u16(rest, 1),
                total_len: get_u32(rest, 3),
            })
        }
        PacketKind::Frag => {
            need(3)?;
            Ok(Packet::Frag {
                dst,
                src,
                id,
                fwd,
                seq: rest[0],
                index: get_u16(rest, 1),
                data: rest[3..].to_vec(),
            })
        }
        PacketKind::Ack => {
            need(3)?;
            Ok(Packet::Ack {
                dst,
                src,
                id,
                fwd,
                seq: rest[0],
                index: get_u16(rest, 1),
            })
        }
        PacketKind::Lost => {
            need(1)?;
            if !(rest.len() - 1).is_multiple_of(2) {
                return Err(CodecError::MalformedRoutingPayload);
            }
            let missing = rest[1..]
                .chunks_exact(2)
                .map(|c| u16::from_le_bytes([c[0], c[1]]))
                .collect();
            Ok(Packet::Lost {
                dst,
                src,
                id,
                fwd,
                seq: rest[0],
                missing,
            })
        }
    }
}

/// The encoded size of a packet without actually encoding it.
#[must_use]
pub fn encoded_len(packet: &Packet) -> usize {
    COMMON_HEADER_LEN
        + match packet {
            Packet::Hello { entries, .. } => 1 + entries.len() * ROUTE_ENTRY_LEN,
            Packet::Data { payload, .. } => FORWARDING_LEN + payload.len(),
            Packet::Sync { .. } => FORWARDING_LEN + 7,
            Packet::Frag { data, .. } => FORWARDING_LEN + 3 + data.len(),
            Packet::Ack { .. } => FORWARDING_LEN + 3,
            Packet::Lost { missing, .. } => FORWARDING_LEN + 1 + 2 * missing.len(),
        }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::SYNC_ACK_INDEX;

    fn fwd() -> Forwarding {
        Forwarding {
            via: Address::new(0x0202),
            ttl: 10,
        }
    }

    fn samples() -> Vec<Packet> {
        let src = Address::new(0x0A0A);
        let dst = Address::new(0x1414);
        vec![
            Packet::Hello {
                src,
                id: 7,
                role: 1,
                entries: vec![
                    RouteEntry {
                        address: Address::new(3),
                        metric: 1,
                        role: 0,
                    },
                    RouteEntry {
                        address: Address::new(4),
                        metric: 2,
                        role: 1,
                    },
                ],
            },
            Packet::Data {
                dst,
                src,
                id: 8,
                fwd: fwd(),
                payload: b"hello mesh".to_vec(),
            },
            Packet::Sync {
                dst,
                src,
                id: 9,
                fwd: fwd(),
                seq: 3,
                frag_count: 12,
                total_len: 2800,
            },
            Packet::Frag {
                dst,
                src,
                id: 10,
                fwd: fwd(),
                seq: 3,
                index: 5,
                data: vec![0xAA; 100],
            },
            Packet::Ack {
                dst,
                src,
                id: 11,
                fwd: fwd(),
                seq: 3,
                index: SYNC_ACK_INDEX,
            },
            Packet::Lost {
                dst,
                src,
                id: 12,
                fwd: fwd(),
                seq: 3,
                missing: vec![2, 7, 9],
            },
        ]
    }

    #[test]
    fn round_trip_all_kinds() {
        for p in samples() {
            let wire = encode(&p).unwrap();
            let back = decode(&wire).unwrap();
            assert_eq!(back, p, "kind {}", p.kind());
            assert_eq!(wire.len(), encoded_len(&p), "encoded_len for {}", p.kind());
        }
    }

    #[test]
    fn header_layout_matches_spec() {
        let p = Packet::Data {
            dst: Address::new(0x2211),
            src: Address::new(0x4433),
            id: 0x55,
            fwd: Forwarding {
                via: Address::new(0x7766),
                ttl: 0x08,
            },
            payload: vec![0xAB, 0xCD],
        };
        let wire = encode(&p).unwrap();
        assert_eq!(
            wire,
            vec![
                0x11, 0x22, // dst LE
                0x33, 0x44, // src LE
                0x02, // kind Data
                0x55, // id
                0x05, // plen: via(2)+ttl(1)+payload(2)
                0x66, 0x77, // via LE
                0x08, // ttl
                0xAB, 0xCD,
            ]
        );
    }

    #[test]
    fn overhead_constants_match_reality() {
        let data = Packet::Data {
            dst: Address::new(1),
            src: Address::new(2),
            id: 0,
            fwd: fwd(),
            payload: vec![],
        };
        assert_eq!(encode(&data).unwrap().len(), DATA_OVERHEAD);
        let frag = Packet::Frag {
            dst: Address::new(1),
            src: Address::new(2),
            id: 0,
            fwd: fwd(),
            seq: 0,
            index: 0,
            data: vec![],
        };
        assert_eq!(encode(&frag).unwrap().len(), FRAG_OVERHEAD);
    }

    #[test]
    fn max_payload_fits_min_over_does_not() {
        let mk = |n: usize| Packet::Data {
            dst: Address::new(1),
            src: Address::new(2),
            id: 0,
            fwd: fwd(),
            payload: vec![0; n],
        };
        assert_eq!(encode(&mk(MAX_DATA_PAYLOAD)).unwrap().len(), MAX_FRAME_LEN);
        assert_eq!(
            encode(&mk(MAX_DATA_PAYLOAD + 1)),
            Err(CodecError::FrameTooLarge(MAX_FRAME_LEN + 1))
        );
    }

    #[test]
    fn hello_with_max_entries_fits() {
        let entries = vec![
            RouteEntry {
                address: Address::new(9),
                metric: 3,
                role: 0
            };
            MAX_HELLO_ENTRIES
        ];
        let p = Packet::Hello {
            src: Address::new(1),
            id: 0,
            role: 0,
            entries,
        };
        let wire = encode(&p).unwrap();
        assert!(wire.len() <= MAX_FRAME_LEN);
        assert!(
            matches!(decode(&wire).unwrap(), Packet::Hello { entries, .. } if entries.len() == MAX_HELLO_ENTRIES)
        );
    }

    #[test]
    fn decode_rejects_truncated() {
        assert_eq!(
            decode(&[0, 0, 0]),
            Err(CodecError::Truncated { needed: 7, got: 3 })
        );
        // Unicast frame cut before its forwarding extension.
        let mut wire = encode(&samples()[1]).unwrap();
        wire.truncate(8);
        wire[6] = 1; // make declared length consistent with the cut
        assert!(matches!(decode(&wire), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn decode_rejects_unknown_kind() {
        let mut wire = encode(&samples()[1]).unwrap();
        wire[4] = 0x7F;
        assert_eq!(decode(&wire), Err(CodecError::UnknownKind(0x7F)));
    }

    #[test]
    fn decode_rejects_length_mismatch() {
        let mut wire = encode(&samples()[1]).unwrap();
        wire[6] += 1;
        assert!(matches!(
            decode(&wire),
            Err(CodecError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn decode_rejects_ragged_hello() {
        let mut wire = encode(&samples()[0]).unwrap();
        wire.push(0xEE); // half an entry
        wire[6] += 1;
        assert_eq!(decode(&wire), Err(CodecError::MalformedRoutingPayload));
    }

    #[test]
    fn decode_rejects_ragged_lost() {
        let p = Packet::Lost {
            dst: Address::new(1),
            src: Address::new(2),
            id: 0,
            fwd: fwd(),
            seq: 1,
            missing: vec![4],
        };
        let mut wire = encode(&p).unwrap();
        wire.push(0x01);
        wire[6] += 1;
        assert_eq!(decode(&wire), Err(CodecError::MalformedRoutingPayload));
    }

    #[test]
    fn empty_data_payload_round_trips() {
        let p = Packet::Data {
            dst: Address::new(1),
            src: Address::new(2),
            id: 0,
            fwd: fwd(),
            payload: vec![],
        };
        assert_eq!(decode(&encode(&p).unwrap()).unwrap(), p);
    }

    #[test]
    fn empty_hello_round_trips() {
        let p = Packet::Hello {
            src: Address::new(2),
            id: 0,
            role: 3,
            entries: vec![],
        };
        assert_eq!(decode(&encode(&p).unwrap()).unwrap(), p);
    }
}
