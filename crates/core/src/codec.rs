//! The compact binary wire format.
//!
//! Matching the C++ library's packed structs, every frame starts with a
//! 7-byte common header; unicast kinds add a 3-byte forwarding extension:
//!
//! ```text
//! offset  0        2        4      5    6       7
//!         +--------+--------+------+----+-------+----------------------
//!         | dst LE | src LE | kind | id | plen  | payload (plen bytes)
//!         +--------+--------+------+----+-------+----------------------
//!
//! unicast payload:   via LE (2) | ttl (1) | kind-specific body
//! Hello payload:     role (1)   | entries: [addr LE (2) | metric | role] *
//! Data body:         application bytes
//! Sync body:         seq (1) | frag_count LE (2) | total_len LE (4)
//! Frag body:         seq (1) | index LE (2) | fragment bytes
//! Ack body:          seq (1) | index LE (2)
//! Lost body:         seq (1) | missing: index LE (2) *
//! ```
//!
//! `plen` counts every byte after the common header, so a frame is always
//! `7 + plen ≤ 255` bytes and the length is verifiable on receipt.

// This file is a meshlint R1 hot path: decoding operates on untrusted
// over-the-air bytes and must return `Err`, never panic. No indexing,
// no `unwrap`/`expect`, no `unreachable!` — all reads go through the
// bounds-checked [`Reader`] cursor. `clippy::indexing_slicing` backs
// this up at compile time.
#![deny(clippy::indexing_slicing)]

use alloc::vec::Vec;

use crate::addr::Address;
use crate::cast::sat_u8;
use crate::error::CodecError;
use crate::packet::{Forwarding, Packet, PacketKind, RouteEntry};

/// Size of the common header present in every frame.
pub const COMMON_HEADER_LEN: usize = 7;
/// Byte offset of the packet id within the common header.
pub const HEADER_ID_OFFSET: usize = 5;
/// Size of the forwarding extension in unicast frames.
pub const FORWARDING_LEN: usize = 3;
/// Total header overhead of a Data frame.
pub const DATA_OVERHEAD: usize = COMMON_HEADER_LEN + FORWARDING_LEN;
/// Bytes each routing entry occupies in a Hello frame.
pub const ROUTE_ENTRY_LEN: usize = 4;
/// Largest encoded frame (the LoRa PHY limit).
pub const MAX_FRAME_LEN: usize = 255;
/// Largest `plen` value (frame minus common header).
pub const MAX_PAYLOAD_LEN: usize = MAX_FRAME_LEN - COMMON_HEADER_LEN;
/// Largest application payload of a single Data frame.
pub const MAX_DATA_PAYLOAD: usize = MAX_FRAME_LEN - DATA_OVERHEAD;
/// Header overhead of a Frag frame (forwarding + seq + index).
pub const FRAG_OVERHEAD: usize = DATA_OVERHEAD + 3;
/// Largest fragment body of a reliable transfer.
pub const MAX_FRAG_PAYLOAD: usize = MAX_FRAME_LEN - FRAG_OVERHEAD;
/// Largest number of routing entries a single Hello frame can carry.
pub const MAX_HELLO_ENTRIES: usize = (MAX_PAYLOAD_LEN - 1) / ROUTE_ENTRY_LEN;

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked cursor over an untrusted frame. Every read either
/// yields bytes or a [`CodecError::Truncated`] naming how many bytes
/// the frame would have needed — there is no panicking path.
struct Reader<'a> {
    frame: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(frame: &'a [u8]) -> Self {
        Reader { frame, pos: 0 }
    }

    /// Bytes not yet consumed.
    fn remaining(&self) -> usize {
        self.frame.len().saturating_sub(self.pos)
    }

    /// Consumes exactly `n` bytes.
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.saturating_add(n);
        let chunk = self.frame.get(self.pos..end).ok_or(CodecError::Truncated {
            needed: end,
            got: self.frame.len(),
        })?;
        self.pos = end;
        Ok(chunk)
    }

    /// Consumes everything left.
    fn rest(&mut self) -> &'a [u8] {
        let chunk = self.frame.get(self.pos..).unwrap_or(&[]);
        self.pos = self.frame.len();
        chunk
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?.first().copied().unwrap_or(0))
    }

    fn u16_le(&mut self) -> Result<u16, CodecError> {
        match *self.take(2)? {
            [a, b] => Ok(u16::from_le_bytes([a, b])),
            // `take(2)` returned exactly two bytes; this arm only keeps
            // the match exhaustive without a panic path.
            _ => Err(CodecError::Truncated {
                needed: self.pos,
                got: self.frame.len(),
            }),
        }
    }

    fn u32_le(&mut self) -> Result<u32, CodecError> {
        match *self.take(4)? {
            [a, b, c, d] => Ok(u32::from_le_bytes([a, b, c, d])),
            _ => Err(CodecError::Truncated {
                needed: self.pos,
                got: self.frame.len(),
            }),
        }
    }
}

/// Encodes a packet into its wire representation.
///
/// ```
/// use loramesher::codec::{decode, encode};
/// use loramesher::packet::{Forwarding, Packet};
/// use loramesher::Address;
///
/// let packet = Packet::Data {
///     dst: Address::new(2),
///     src: Address::new(1),
///     id: 0,
///     fwd: Forwarding { via: Address::new(2), ttl: 10 },
///     payload: b"sensor reading".to_vec(),
/// };
/// let wire = encode(&packet)?;
/// assert_eq!(decode(&wire)?, packet);
/// # Ok::<(), loramesher::CodecError>(())
/// ```
///
/// # Errors
///
/// Returns [`CodecError::FrameTooLarge`] when the encoded frame would
/// exceed the 255-byte PHY limit.
pub fn encode(packet: &Packet) -> Result<Vec<u8>, CodecError> {
    let mut buf = Vec::new();
    encode_into(packet, &mut buf)?;
    Ok(buf)
}

/// Encodes a packet into a caller-supplied buffer, clearing it first.
///
/// The allocation-free sibling of [`encode`]: a reused buffer reaches a
/// steady-state capacity after which encoding never touches the heap.
/// On error the buffer is left cleared.
///
/// # Errors
///
/// Returns [`CodecError::FrameTooLarge`] when the encoded frame would
/// exceed the 255-byte PHY limit.
pub fn encode_into(packet: &Packet, buf: &mut Vec<u8>) -> Result<(), CodecError> {
    // Compute the length first so `plen` is written once, correctly,
    // instead of patched after the fact — and so the PHY limit is
    // enforced before the buffer grows past it.
    buf.clear();
    let total = encoded_len(packet);
    if total > MAX_FRAME_LEN {
        return Err(CodecError::FrameTooLarge(total));
    }
    let plen = sat_u8(total - COMMON_HEADER_LEN);

    buf.reserve(total);
    put_u16(buf, packet.dst().value());
    put_u16(buf, packet.src().value());
    buf.push(packet.kind().wire());
    buf.push(packet.id());
    buf.push(plen);

    if let Some(Forwarding { via, ttl }) = packet.forwarding() {
        put_u16(buf, via.value());
        buf.push(ttl);
    }

    match packet {
        Packet::Hello { role, entries, .. } => {
            buf.push(*role);
            for e in entries {
                put_u16(buf, e.address.value());
                buf.push(e.metric);
                buf.push(e.role);
            }
        }
        Packet::Data { payload, .. } => buf.extend_from_slice(payload),
        Packet::Sync {
            seq,
            frag_count,
            total_len,
            ..
        } => {
            buf.push(*seq);
            put_u16(buf, *frag_count);
            put_u32(buf, *total_len);
        }
        Packet::Frag {
            seq, index, data, ..
        } => {
            buf.push(*seq);
            put_u16(buf, *index);
            buf.extend_from_slice(data);
        }
        Packet::Ack { seq, index, .. } => {
            buf.push(*seq);
            put_u16(buf, *index);
        }
        Packet::Lost { seq, missing, .. } => {
            buf.push(*seq);
            for m in missing {
                put_u16(buf, *m);
            }
        }
    }

    debug_assert_eq!(buf.len(), total, "encoded_len disagrees with encode");
    Ok(())
}

/// Decodes a wire frame into a packet.
///
/// # Errors
///
/// Returns a [`CodecError`] when the frame is truncated, declares a wrong
/// length, uses an unknown kind, or carries a malformed payload.
pub fn decode(frame: &[u8]) -> Result<Packet, CodecError> {
    if frame.len() < COMMON_HEADER_LEN {
        return Err(CodecError::Truncated {
            needed: COMMON_HEADER_LEN,
            got: frame.len(),
        });
    }
    let mut r = Reader::new(frame);
    let dst = Address::new(r.u16_le()?);
    let src = Address::new(r.u16_le()?);
    let kind_byte = r.u8()?;
    let kind = PacketKind::from_wire(kind_byte).ok_or(CodecError::UnknownKind(kind_byte))?;
    let id = r.u8()?;
    let declared = usize::from(r.u8()?);
    let actual = r.remaining();
    if declared != actual {
        return Err(CodecError::LengthMismatch { declared, actual });
    }

    if kind == PacketKind::Hello {
        if actual == 0 || !(actual - 1).is_multiple_of(ROUTE_ENTRY_LEN) {
            return Err(CodecError::MalformedRoutingPayload);
        }
        let role = r.u8()?;
        let mut entries = Vec::with_capacity(r.remaining() / ROUTE_ENTRY_LEN);
        while r.remaining() > 0 {
            entries.push(RouteEntry {
                address: Address::new(r.u16_le()?),
                metric: r.u8()?,
                role: r.u8()?,
            });
        }
        return Ok(Packet::Hello {
            src,
            id,
            role,
            entries,
        });
    }

    // All remaining kinds carry the forwarding extension.
    let fwd = Forwarding {
        via: Address::new(r.u16_le()?),
        ttl: r.u8()?,
    };

    match kind {
        // Returned above; this arm only keeps the match exhaustive
        // without reintroducing a panic path.
        PacketKind::Hello => Err(CodecError::UnknownKind(PacketKind::Hello.wire())),
        PacketKind::Data => Ok(Packet::Data {
            dst,
            src,
            id,
            fwd,
            payload: r.rest().to_vec(),
        }),
        PacketKind::Sync => {
            let packet = Packet::Sync {
                dst,
                src,
                id,
                fwd,
                seq: r.u8()?,
                frag_count: r.u16_le()?,
                total_len: r.u32_le()?,
            };
            if r.remaining() > 0 {
                return Err(CodecError::TrailingBytes(r.remaining()));
            }
            Ok(packet)
        }
        PacketKind::Frag => Ok(Packet::Frag {
            dst,
            src,
            id,
            fwd,
            seq: r.u8()?,
            index: r.u16_le()?,
            data: r.rest().to_vec(),
        }),
        PacketKind::Ack => {
            let packet = Packet::Ack {
                dst,
                src,
                id,
                fwd,
                seq: r.u8()?,
                index: r.u16_le()?,
            };
            if r.remaining() > 0 {
                return Err(CodecError::TrailingBytes(r.remaining()));
            }
            Ok(packet)
        }
        PacketKind::Lost => {
            let seq = r.u8()?;
            if !r.remaining().is_multiple_of(2) {
                return Err(CodecError::MalformedRoutingPayload);
            }
            let mut missing = Vec::with_capacity(r.remaining() / 2);
            while r.remaining() > 0 {
                missing.push(r.u16_le()?);
            }
            Ok(Packet::Lost {
                dst,
                src,
                id,
                fwd,
                seq,
                missing,
            })
        }
    }
}

/// The encoded size of a packet without actually encoding it.
#[must_use]
pub fn encoded_len(packet: &Packet) -> usize {
    COMMON_HEADER_LEN
        + match packet {
            Packet::Hello { entries, .. } => 1 + entries.len() * ROUTE_ENTRY_LEN,
            Packet::Data { payload, .. } => FORWARDING_LEN + payload.len(),
            Packet::Sync { .. } => FORWARDING_LEN + 7,
            Packet::Frag { data, .. } => FORWARDING_LEN + 3 + data.len(),
            Packet::Ack { .. } => FORWARDING_LEN + 3,
            Packet::Lost { missing, .. } => FORWARDING_LEN + 1 + 2 * missing.len(),
        }
}

#[cfg(test)]
// Tests index into frames they just built; a panic here is a test
// failure, not a protocol crash.
#[allow(clippy::indexing_slicing)]
mod tests {
    use super::*;
    use crate::packet::SYNC_ACK_INDEX;

    fn fwd() -> Forwarding {
        Forwarding {
            via: Address::new(0x0202),
            ttl: 10,
        }
    }

    fn samples() -> Vec<Packet> {
        let src = Address::new(0x0A0A);
        let dst = Address::new(0x1414);
        vec![
            Packet::Hello {
                src,
                id: 7,
                role: 1,
                entries: vec![
                    RouteEntry {
                        address: Address::new(3),
                        metric: 1,
                        role: 0,
                    },
                    RouteEntry {
                        address: Address::new(4),
                        metric: 2,
                        role: 1,
                    },
                ],
            },
            Packet::Data {
                dst,
                src,
                id: 8,
                fwd: fwd(),
                payload: b"hello mesh".to_vec(),
            },
            Packet::Sync {
                dst,
                src,
                id: 9,
                fwd: fwd(),
                seq: 3,
                frag_count: 12,
                total_len: 2800,
            },
            Packet::Frag {
                dst,
                src,
                id: 10,
                fwd: fwd(),
                seq: 3,
                index: 5,
                data: vec![0xAA; 100],
            },
            Packet::Ack {
                dst,
                src,
                id: 11,
                fwd: fwd(),
                seq: 3,
                index: SYNC_ACK_INDEX,
            },
            Packet::Lost {
                dst,
                src,
                id: 12,
                fwd: fwd(),
                seq: 3,
                missing: vec![2, 7, 9],
            },
        ]
    }

    #[test]
    fn round_trip_all_kinds() {
        for p in samples() {
            let wire = encode(&p).unwrap();
            let back = decode(&wire).unwrap();
            assert_eq!(back, p, "kind {}", p.kind());
            assert_eq!(wire.len(), encoded_len(&p), "encoded_len for {}", p.kind());
        }
    }

    #[test]
    fn header_layout_matches_spec() {
        let p = Packet::Data {
            dst: Address::new(0x2211),
            src: Address::new(0x4433),
            id: 0x55,
            fwd: Forwarding {
                via: Address::new(0x7766),
                ttl: 0x08,
            },
            payload: vec![0xAB, 0xCD],
        };
        let wire = encode(&p).unwrap();
        assert_eq!(
            wire,
            vec![
                0x11, 0x22, // dst LE
                0x33, 0x44, // src LE
                0x02, // kind Data
                0x55, // id
                0x05, // plen: via(2)+ttl(1)+payload(2)
                0x66, 0x77, // via LE
                0x08, // ttl
                0xAB, 0xCD,
            ]
        );
    }

    #[test]
    fn overhead_constants_match_reality() {
        let data = Packet::Data {
            dst: Address::new(1),
            src: Address::new(2),
            id: 0,
            fwd: fwd(),
            payload: vec![],
        };
        assert_eq!(encode(&data).unwrap().len(), DATA_OVERHEAD);
        let frag = Packet::Frag {
            dst: Address::new(1),
            src: Address::new(2),
            id: 0,
            fwd: fwd(),
            seq: 0,
            index: 0,
            data: vec![],
        };
        assert_eq!(encode(&frag).unwrap().len(), FRAG_OVERHEAD);
    }

    #[test]
    fn max_payload_fits_min_over_does_not() {
        let mk = |n: usize| Packet::Data {
            dst: Address::new(1),
            src: Address::new(2),
            id: 0,
            fwd: fwd(),
            payload: vec![0; n],
        };
        assert_eq!(encode(&mk(MAX_DATA_PAYLOAD)).unwrap().len(), MAX_FRAME_LEN);
        assert_eq!(
            encode(&mk(MAX_DATA_PAYLOAD + 1)),
            Err(CodecError::FrameTooLarge(MAX_FRAME_LEN + 1))
        );
    }

    #[test]
    fn hello_with_max_entries_fits() {
        let entries = vec![
            RouteEntry {
                address: Address::new(9),
                metric: 3,
                role: 0
            };
            MAX_HELLO_ENTRIES
        ];
        let p = Packet::Hello {
            src: Address::new(1),
            id: 0,
            role: 0,
            entries,
        };
        let wire = encode(&p).unwrap();
        assert!(wire.len() <= MAX_FRAME_LEN);
        assert!(
            matches!(decode(&wire).unwrap(), Packet::Hello { entries, .. } if entries.len() == MAX_HELLO_ENTRIES)
        );
    }

    #[test]
    fn decode_rejects_truncated() {
        assert_eq!(
            decode(&[0, 0, 0]),
            Err(CodecError::Truncated { needed: 7, got: 3 })
        );
        // Unicast frame cut before its forwarding extension.
        let mut wire = encode(&samples()[1]).unwrap();
        wire.truncate(8);
        wire[6] = 1; // make declared length consistent with the cut
        assert!(matches!(decode(&wire), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn decode_rejects_unknown_kind() {
        let mut wire = encode(&samples()[1]).unwrap();
        wire[4] = 0x7F;
        assert_eq!(decode(&wire), Err(CodecError::UnknownKind(0x7F)));
    }

    #[test]
    fn decode_rejects_length_mismatch() {
        let mut wire = encode(&samples()[1]).unwrap();
        wire[6] += 1;
        assert!(matches!(
            decode(&wire),
            Err(CodecError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn decode_rejects_ragged_hello() {
        let mut wire = encode(&samples()[0]).unwrap();
        wire.push(0xEE); // half an entry
        wire[6] += 1;
        assert_eq!(decode(&wire), Err(CodecError::MalformedRoutingPayload));
    }

    #[test]
    fn decode_rejects_ragged_lost() {
        let p = Packet::Lost {
            dst: Address::new(1),
            src: Address::new(2),
            id: 0,
            fwd: fwd(),
            seq: 1,
            missing: vec![4],
        };
        let mut wire = encode(&p).unwrap();
        wire.push(0x01);
        wire[6] += 1;
        assert_eq!(decode(&wire), Err(CodecError::MalformedRoutingPayload));
    }

    #[test]
    fn empty_data_payload_round_trips() {
        let p = Packet::Data {
            dst: Address::new(1),
            src: Address::new(2),
            id: 0,
            fwd: fwd(),
            payload: vec![],
        };
        assert_eq!(decode(&encode(&p).unwrap()).unwrap(), p);
    }

    #[test]
    fn empty_hello_round_trips() {
        let p = Packet::Hello {
            src: Address::new(2),
            id: 0,
            role: 3,
            entries: vec![],
        };
        assert_eq!(decode(&encode(&p).unwrap()).unwrap(), p);
    }
}
