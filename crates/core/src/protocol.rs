//! The cross-layer protocol abstraction: one trait that names a
//! complete, swappable stack.
//!
//! The crate now ships two first-class protocols over the same shared
//! substrate:
//!
//! * [`LoraMesher`] — the distance-vector stack of the source paper
//!   ([`crate::stack`]): hello broadcasts, routed unicast forwarding
//!   and the reliable large-payload transport.
//! * [`Flooding`] — Meshtastic-style managed flooding
//!   ([`crate::flood`]): no routing state, duplicate-suppressed
//!   rebroadcast with a decrementing hop limit.
//!
//! A [`Protocol`] implementation is the *composition choice*: which
//! routing daemon (or none), which forwarding policy, which transport
//! and which application codec run above the shared MAC. What the
//! protocols may NOT vary is the substrate contract:
//!
//! # The substrate contract
//!
//! Every protocol stack is a sans-IO [`NodeProtocol`] state machine and
//! must preserve the properties the simulator's determinism proofs
//! (`tests/engine_diff.rs`, `tests/protocol_refactor_diff.rs`) rest on:
//!
//! 1. **Shared channel access.** All frame emission goes through
//!    [`crate::stack::mac::MacLayer`] — CAD/backoff/duty-cycle behaviour
//!    is identical across protocols, so cross-protocol experiments
//!    measure protocol overhead, not MAC drift.
//! 2. **One RNG per node.** Every random draw comes from the node's
//!    single [`crate::rng::ProtocolRng`] (owned by the bus), in an
//!    order fixed by the dispatch rules below — a seed fully determines
//!    a node's behaviour.
//! 3. **Frozen dispatch order.** Each stack documents a fixed
//!    `process_due` order (see [`crate::stack`] and [`crate::flood`]
//!    module docs) and dispatches host callbacks the same way every
//!    time. No ambient time, no ambient randomness (meshlint rule D2),
//!    no iteration over hashed collections (rule D1).
//! 4. **Panic-free on hostile input.** `on_frame` consumes
//!    over-the-air bytes; decode failures are counted, never unwrapped
//!    (rule R1).
//!
//! Hosts that are generic over the stack (the simulator's firmware
//! adapter, the CLI) pick a protocol by [`Protocol::NAME`] and build
//! nodes through [`Protocol::build`], never touching concrete types.

use core::fmt::Debug;

use crate::config::MeshConfig;
use crate::driver::NodeProtocol;
use crate::flood::{FloodConfig, FloodNode};
use crate::stack::MeshNode;

/// A complete protocol stack: the per-layer composition a host can
/// instantiate nodes from. See the [module docs](self) for the contract
/// every implementation must honour.
pub trait Protocol {
    /// The stack's node configuration.
    type Config;
    /// The node state machine the host drives.
    type Node: NodeProtocol + Send + Debug;

    /// The stack's canonical name, as accepted by `meshsim --protocol`
    /// and printed in experiment reports.
    const NAME: &'static str;

    /// Builds one node of this protocol from its configuration.
    fn build(config: Self::Config) -> Self::Node;
}

/// The LoRaMesher distance-vector stack (the paper's protocol).
#[derive(Clone, Copy, Debug, Default)]
pub struct LoraMesher;

impl Protocol for LoraMesher {
    type Config = MeshConfig;
    type Node = MeshNode;

    const NAME: &'static str = "loramesher";

    fn build(config: MeshConfig) -> MeshNode {
        MeshNode::new(config)
    }
}

/// The managed-flooding stack (Meshtastic-style).
#[derive(Clone, Copy, Debug, Default)]
pub struct Flooding;

impl Protocol for Flooding {
    type Config = FloodConfig;
    type Node = FloodNode;

    const NAME: &'static str = "flooding";

    fn build(config: FloodConfig) -> FloodNode {
        FloodNode::new(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Address;
    use crate::driver::RadioIo;
    use core::time::Duration;
    use lora_phy::region::Region;

    /// Generic host code compiles and runs against both stacks.
    fn boot<P: Protocol>(config: P::Config) -> P::Node {
        let mut node = P::build(config);
        let mut io = RadioIo::new(Duration::ZERO);
        node.on_start(&mut io);
        node
    }

    #[test]
    fn both_stacks_build_through_the_trait() {
        let mesh = boot::<LoraMesher>(
            MeshConfig::builder(Address::new(1))
                .region(Region::Unlimited)
                .build(),
        );
        assert!(mesh.next_wake().is_some(), "mesh schedules its hello");
        let flood = boot::<Flooding>({
            let mut c = FloodConfig::new(Address::new(2));
            c.region = Region::Unlimited;
            c
        });
        assert!(flood.next_wake().is_none(), "flooding is purely reactive");
    }

    #[test]
    fn names_are_the_cli_spellings() {
        assert_eq!(LoraMesher::NAME, "loramesher");
        assert_eq!(Flooding::NAME, "flooding");
    }
}
