//! Medium access control: listen-before-talk with exponential backoff and
//! duty-cycle gating.
//!
//! Before every transmission the node performs a channel-activity-
//! detection (CAD) scan. A busy channel triggers a random backoff drawn
//! from a binary-exponential window; a clear channel lets the frame out —
//! unless the regulatory duty-cycle budget is exhausted, in which case the
//! frame waits until the sliding window frees enough airtime. Frames that
//! exceed the CAD retry limit, or that could never fit the duty budget,
//! are dropped and reported.
//!
//! The [`Mac`] is a small synchronous state machine owned by
//! [`crate::MeshNode`]; it never touches the radio itself — it tells the
//! node what to ask for ([`MacAction`]).

use core::time::Duration;

use lora_phy::region::DutyCycleTracker;

use crate::rng::ProtocolRng;

/// What the MAC wants the node to do next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MacAction {
    /// Nothing right now.
    None,
    /// Issue a CAD scan.
    StartCad,
    /// The channel is ours and the duty budget allows it: transmit the
    /// front of the queue now.
    Transmit,
    /// Give up on the front frame (CAD retries exhausted, or the frame
    /// can never fit the duty budget).
    DropFrame,
}

/// MAC engine state.
#[derive(Clone, Debug, PartialEq)]
enum MacState {
    /// Idle; will CAD when the node has traffic.
    Ready,
    /// A CAD scan is in flight.
    WaitingCad { attempt: u32 },
    /// Backing off after a busy CAD.
    Backoff { until: Duration, attempt: u32 },
    /// Waiting for duty-cycle budget.
    WaitingDuty { until: Duration },
    /// A transmission is on the air.
    Transmitting,
}

/// The listen-before-talk engine.
#[derive(Clone, Debug)]
pub struct Mac {
    state: MacState,
    duty: DutyCycleTracker,
    slot: Duration,
    max_exponent: u32,
    max_retries: u32,
    /// Maximum single-transmission duration (regulatory dwell), if any.
    max_dwell: Option<Duration>,
    /// Duty-cycle deferrals observed (for statistics).
    pub duty_deferrals: u64,
    /// Frames dropped after exhausting CAD retries.
    pub cad_drops: u64,
    /// Frames dropped for exceeding the dwell limit.
    pub dwell_drops: u64,
}

impl Mac {
    /// Creates a MAC with the given backoff parameters and duty tracker.
    #[must_use]
    pub fn new(
        duty: DutyCycleTracker,
        slot: Duration,
        max_exponent: u32,
        max_retries: u32,
    ) -> Self {
        Mac {
            state: MacState::Ready,
            duty,
            slot,
            max_exponent,
            max_retries,
            max_dwell: None,
            duty_deferrals: 0,
            cad_drops: 0,
            dwell_drops: 0,
        }
    }

    /// Sets the regulatory dwell limit (maximum single-transmission
    /// duration); frames whose airtime exceeds it are dropped.
    pub fn set_max_dwell(&mut self, dwell: Option<Duration>) {
        self.max_dwell = dwell;
    }

    /// Whether a frame of the given airtime violates the dwell limit.
    #[must_use]
    pub fn violates_dwell(&self, airtime: Duration) -> bool {
        self.max_dwell.is_some_and(|d| airtime > d)
    }

    /// Whether the MAC is idle and can take on a new frame.
    #[must_use]
    pub fn is_ready(&self) -> bool {
        matches!(self.state, MacState::Ready)
    }

    /// The duty-cycle tracker (for reporting).
    #[must_use]
    pub fn duty(&self) -> &DutyCycleTracker {
        &self.duty
    }

    /// Called when the node has traffic queued and time has come to act.
    /// Starts the CAD cycle when idle or when a backoff/duty wait has
    /// elapsed.
    #[must_use]
    pub fn kick(&mut self, now: Duration) -> MacAction {
        match self.state {
            MacState::Ready => {
                self.state = MacState::WaitingCad { attempt: 0 };
                MacAction::StartCad
            }
            MacState::Backoff { until, attempt } if now >= until => {
                self.state = MacState::WaitingCad { attempt };
                MacAction::StartCad
            }
            MacState::WaitingDuty { until } if now >= until => {
                self.state = MacState::WaitingCad { attempt: 0 };
                MacAction::StartCad
            }
            _ => MacAction::None,
        }
    }

    /// ALOHA-mode kick (CSMA disabled, used by the ablation experiments):
    /// transmits without carrier sensing, subject only to the duty-cycle
    /// budget and any pending duty wait.
    #[must_use]
    pub fn kick_aloha(&mut self, airtime: Duration, now: Duration) -> MacAction {
        match self.state {
            MacState::Ready => {}
            MacState::WaitingDuty { until } if now >= until => {}
            _ => return MacAction::None,
        }
        if self.violates_dwell(airtime) {
            self.state = MacState::Ready;
            self.dwell_drops += 1;
            return MacAction::DropFrame;
        }
        if self.duty.try_transmit(now, airtime) {
            self.state = MacState::Transmitting;
            MacAction::Transmit
        } else {
            self.duty_deferrals += 1;
            match self.duty.next_allowed(now, airtime) {
                Some(until) => {
                    self.state = MacState::WaitingDuty { until };
                    MacAction::None
                }
                None => {
                    self.state = MacState::Ready;
                    MacAction::DropFrame
                }
            }
        }
    }

    /// Handles a CAD result for the frame at the front of the queue
    /// (whose on-air duration is `airtime`).
    #[must_use]
    pub fn on_cad_done(
        &mut self,
        busy: bool,
        airtime: Duration,
        now: Duration,
        rng: &mut ProtocolRng,
    ) -> MacAction {
        let MacState::WaitingCad { attempt } = self.state else {
            return MacAction::None; // spurious
        };
        if self.violates_dwell(airtime) {
            self.state = MacState::Ready;
            self.dwell_drops += 1;
            return MacAction::DropFrame;
        }
        if busy {
            let next_attempt = attempt + 1;
            if next_attempt > self.max_retries {
                self.state = MacState::Ready;
                self.cad_drops += 1;
                return MacAction::DropFrame;
            }
            let window = 1u64 << next_attempt.min(self.max_exponent);
            let slots = 1 + rng.gen_range(window);
            self.state = MacState::Backoff {
                until: now + self.slot * u32::try_from(slots).unwrap_or(u32::MAX),
                attempt: next_attempt,
            };
            return MacAction::None;
        }
        // Channel clear: check the regulatory budget.
        if self.duty.try_transmit(now, airtime) {
            self.state = MacState::Transmitting;
            MacAction::Transmit
        } else {
            self.duty_deferrals += 1;
            match self.duty.next_allowed(now, airtime) {
                Some(until) => {
                    self.state = MacState::WaitingDuty { until };
                    MacAction::None
                }
                None => {
                    // The frame is larger than the entire budget window.
                    self.state = MacState::Ready;
                    MacAction::DropFrame
                }
            }
        }
    }

    /// Called when the transmission completes.
    pub fn on_tx_done(&mut self) {
        if matches!(self.state, MacState::Transmitting) {
            self.state = MacState::Ready;
        }
    }

    /// The instant the MAC needs to be woken to make progress, if it is
    /// waiting on a deadline (backoff or duty budget).
    #[must_use]
    pub fn next_wake(&self) -> Option<Duration> {
        match self.state {
            MacState::Backoff { until, .. } | MacState::WaitingDuty { until } => Some(until),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac() -> Mac {
        Mac::new(
            DutyCycleTracker::unlimited(),
            Duration::from_millis(100),
            6,
            3,
        )
    }

    fn rng() -> ProtocolRng {
        ProtocolRng::new(42)
    }

    const AIR: Duration = Duration::from_millis(50);

    #[test]
    fn clear_channel_transmits_immediately() {
        let mut m = mac();
        let mut r = rng();
        assert_eq!(m.kick(Duration::ZERO), MacAction::StartCad);
        assert!(!m.is_ready());
        assert_eq!(
            m.on_cad_done(false, AIR, Duration::ZERO, &mut r),
            MacAction::Transmit
        );
        m.on_tx_done();
        assert!(m.is_ready());
    }

    #[test]
    fn busy_channel_backs_off_then_retries() {
        let mut m = mac();
        let mut r = rng();
        assert_eq!(m.kick(Duration::ZERO), MacAction::StartCad);
        assert_eq!(
            m.on_cad_done(true, AIR, Duration::ZERO, &mut r),
            MacAction::None
        );
        let until = m.next_wake().expect("backoff deadline");
        assert!(until > Duration::ZERO);
        assert!(
            until <= Duration::from_millis(100) * 3,
            "window: 1..=2 slots"
        );
        // Too early: nothing happens.
        assert_eq!(m.kick(until - Duration::from_millis(1)), MacAction::None);
        // At the deadline: CAD again.
        assert_eq!(m.kick(until), MacAction::StartCad);
        assert_eq!(
            m.on_cad_done(false, AIR, until, &mut r),
            MacAction::Transmit
        );
    }

    #[test]
    fn backoff_window_grows_exponentially() {
        let mut m = mac();
        let mut r = rng();
        let mut max_seen = Duration::ZERO;
        let mut now = Duration::ZERO;
        for _ in 0..3 {
            let _ = m.kick(now);
            if m.on_cad_done(true, AIR, now, &mut r) == MacAction::DropFrame {
                break;
            }
            let until = m.next_wake().unwrap();
            max_seen = max_seen.max(until - now);
            now = until;
        }
        // With three busy CADs the window reaches 2^3 = 8 slots.
        assert!(max_seen > Duration::from_millis(100));
    }

    #[test]
    fn cad_retries_exhaust_to_drop() {
        let mut m = mac();
        let mut r = rng();
        let mut now = Duration::ZERO;
        let mut dropped = false;
        for _ in 0..10 {
            let _ = m.kick(now);
            match m.on_cad_done(true, AIR, now, &mut r) {
                MacAction::DropFrame => {
                    dropped = true;
                    break;
                }
                _ => now = m.next_wake().unwrap(),
            }
        }
        assert!(dropped);
        assert_eq!(m.cad_drops, 1);
        assert!(m.is_ready());
    }

    #[test]
    fn duty_budget_defers_transmission() {
        // 1% of 1 hour = 36 s budget.
        let mut m = Mac::new(
            DutyCycleTracker::eu868_one_percent(),
            Duration::from_millis(100),
            6,
            3,
        );
        let mut r = rng();
        // Burn the whole budget with one 36 s frame.
        let _ = m.kick(Duration::ZERO);
        assert_eq!(
            m.on_cad_done(false, Duration::from_secs(36), Duration::ZERO, &mut r),
            MacAction::Transmit
        );
        m.on_tx_done();
        // The next frame must wait ~an hour.
        let _ = m.kick(Duration::from_secs(40));
        assert_eq!(
            m.on_cad_done(
                false,
                Duration::from_secs(1),
                Duration::from_secs(40),
                &mut r
            ),
            MacAction::None
        );
        assert_eq!(m.duty_deferrals, 1);
        let until = m.next_wake().unwrap();
        assert!(until > Duration::from_secs(3600));
        // At the deadline the MAC kicks back into CAD and can transmit.
        assert_eq!(m.kick(until), MacAction::StartCad);
        assert_eq!(
            m.on_cad_done(false, Duration::from_secs(1), until, &mut r),
            MacAction::Transmit
        );
    }

    #[test]
    fn impossible_frame_is_dropped() {
        let mut m = Mac::new(
            DutyCycleTracker::eu868_one_percent(),
            Duration::from_millis(100),
            6,
            3,
        );
        let mut r = rng();
        let _ = m.kick(Duration::ZERO);
        // 37 s of airtime can never fit a 36 s budget.
        assert_eq!(
            m.on_cad_done(false, Duration::from_secs(37), Duration::ZERO, &mut r),
            MacAction::DropFrame
        );
        assert!(m.is_ready());
    }

    #[test]
    fn dwell_limit_drops_long_frames() {
        let mut m = mac();
        m.set_max_dwell(Some(Duration::from_millis(400)));
        let mut r = rng();
        // A 500 ms frame exceeds the 400 ms dwell: dropped at CAD time.
        let _ = m.kick(Duration::ZERO);
        assert_eq!(
            m.on_cad_done(false, Duration::from_millis(500), Duration::ZERO, &mut r),
            MacAction::DropFrame
        );
        assert_eq!(m.dwell_drops, 1);
        assert!(m.is_ready());
        // A 300 ms frame is fine.
        let _ = m.kick(Duration::from_secs(1));
        assert_eq!(
            m.on_cad_done(
                false,
                Duration::from_millis(300),
                Duration::from_secs(1),
                &mut r
            ),
            MacAction::Transmit
        );
        // ALOHA path enforces the same limit.
        let mut m = mac();
        m.set_max_dwell(Some(Duration::from_millis(400)));
        m.on_tx_done();
        assert_eq!(
            m.kick_aloha(Duration::from_millis(500), Duration::from_secs(2)),
            MacAction::DropFrame
        );
    }

    #[test]
    fn no_dwell_limit_by_default() {
        let mut m = mac();
        assert!(!m.violates_dwell(Duration::from_secs(10)));
        let mut r = rng();
        let _ = m.kick(Duration::ZERO);
        assert_eq!(
            m.on_cad_done(false, Duration::from_secs(10), Duration::ZERO, &mut r),
            MacAction::Transmit
        );
    }

    #[test]
    fn spurious_cad_result_ignored() {
        let mut m = mac();
        let mut r = rng();
        assert_eq!(
            m.on_cad_done(false, AIR, Duration::ZERO, &mut r),
            MacAction::None
        );
        assert!(m.is_ready());
    }

    #[test]
    fn kick_while_waiting_cad_is_noop() {
        let mut m = mac();
        assert_eq!(m.kick(Duration::ZERO), MacAction::StartCad);
        assert_eq!(m.kick(Duration::from_millis(1)), MacAction::None);
    }

    #[test]
    fn aloha_transmits_without_cad() {
        let mut m = mac();
        assert_eq!(m.kick_aloha(AIR, Duration::ZERO), MacAction::Transmit);
        // Busy until tx done.
        assert_eq!(m.kick_aloha(AIR, Duration::from_millis(1)), MacAction::None);
        m.on_tx_done();
        assert_eq!(
            m.kick_aloha(AIR, Duration::from_millis(60)),
            MacAction::Transmit
        );
    }

    #[test]
    fn aloha_still_respects_duty_cycle() {
        let mut m = Mac::new(
            DutyCycleTracker::eu868_one_percent(),
            Duration::from_millis(100),
            6,
            3,
        );
        assert_eq!(
            m.kick_aloha(Duration::from_secs(36), Duration::ZERO),
            MacAction::Transmit
        );
        m.on_tx_done();
        assert_eq!(
            m.kick_aloha(Duration::from_secs(1), Duration::from_secs(40)),
            MacAction::None
        );
        let until = m.next_wake().unwrap();
        assert!(until > Duration::from_secs(3600));
        assert_eq!(
            m.kick_aloha(Duration::from_secs(1), until),
            MacAction::Transmit
        );
    }

    #[test]
    fn aloha_drops_impossible_frame() {
        let mut m = Mac::new(
            DutyCycleTracker::eu868_one_percent(),
            Duration::from_millis(100),
            6,
            3,
        );
        assert_eq!(
            m.kick_aloha(Duration::from_secs(37), Duration::ZERO),
            MacAction::DropFrame
        );
        assert!(m.is_ready());
    }

    #[test]
    fn tx_done_only_from_transmitting() {
        let mut m = mac();
        m.on_tx_done(); // spurious, stays Ready
        assert!(m.is_ready());
    }
}
