//! AES-128-CTR payload encryption for the flooding stack (feature
//! `crypto`).
//!
//! Meshtastic encrypts application payloads with AES-CTR keyed per
//! channel, deriving the counter block from the packet's originator and
//! id so every flood uses a distinct keystream. This module reproduces
//! that scheme with a self-contained, no_std AES-128 (pulling in a
//! cipher crate would break the zero-dependency rule); CTR mode needs
//! only block *encryption*, so decryption is the same XOR pass.
//!
//! The implementation favours auditability over speed — table-lookup
//! S-box, byte-level MixColumns — which is plenty for simulation and
//! for LoRa data rates (a 200-byte payload is 13 blocks). Correctness
//! is pinned against the FIPS-197 and NIST SP 800-38A known-answer
//! vectors below.
//!
//! Like every flood module this file sits on the receive path of
//! untrusted frames, so it is held to meshlint rule R1: no panicking
//! operation appears here — table lookups go through `get`, block
//! reshaping through iterators and `copy_from_slice` on exact-size
//! arrays.

use alloc::vec::Vec;

use crate::addr::Address;

/// The AES S-box (FIPS-197 figure 7).
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Round constants for the key schedule.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

fn sbox(b: u8) -> u8 {
    SBOX.get(usize::from(b)).copied().unwrap_or(0)
}

/// Multiplication by `x` in GF(2^8) modulo the AES polynomial.
fn xtime(b: u8) -> u8 {
    let shifted = b << 1;
    if b & 0x80 != 0 {
        shifted ^ 0x1b
    } else {
        shifted
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = sbox(*b);
    }
}

fn pick(s: &[u8; 16], i: usize) -> u8 {
    s.get(i).copied().unwrap_or(0)
}

/// Row `r` of the column-major state rotates left by `r`.
fn shift_rows(s: &mut [u8; 16]) {
    let t = [
        pick(s, 0),
        pick(s, 5),
        pick(s, 10),
        pick(s, 15),
        pick(s, 4),
        pick(s, 9),
        pick(s, 14),
        pick(s, 3),
        pick(s, 8),
        pick(s, 13),
        pick(s, 2),
        pick(s, 7),
        pick(s, 12),
        pick(s, 1),
        pick(s, 6),
        pick(s, 11),
    ];
    *s = t;
}

fn mix_columns(state: &mut [u8; 16]) {
    for col in state.chunks_exact_mut(4) {
        match *col {
            [a, b, c, d] => {
                let t = a ^ b ^ c ^ d;
                let na = a ^ t ^ xtime(a ^ b);
                let nb = b ^ t ^ xtime(b ^ c);
                let nc = c ^ t ^ xtime(c ^ d);
                let nd = d ^ t ^ xtime(d ^ a);
                col.copy_from_slice(&[na, nb, nc, nd]);
            }
            // chunks_exact_mut(4) yields only 4-byte slices.
            _ => {}
        }
    }
}

fn xor16(state: &mut [u8; 16], key: &[u8; 16]) {
    for (b, k) in state.iter_mut().zip(key.iter()) {
        *b ^= *k;
    }
}

/// An expanded AES-128 key ready for CTR keystream generation.
#[derive(Clone)]
pub struct Aes128Ctr {
    round_keys: [[u8; 16]; 11],
}

impl core::fmt::Debug for Aes128Ctr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print key material.
        f.write_str("Aes128Ctr { .. }")
    }
}

impl Aes128Ctr {
    /// Expands `key` into the 11 round keys (FIPS-197 §5.2).
    #[must_use]
    pub fn new(key: &[u8; 16]) -> Self {
        let mut words: Vec<[u8; 4]> = Vec::with_capacity(44);
        for chunk in key.chunks_exact(4) {
            let mut w = [0u8; 4];
            w.copy_from_slice(chunk);
            words.push(w);
        }
        for i in 4..44usize {
            let mut t = words.get(i - 1).copied().unwrap_or_default();
            if i % 4 == 0 {
                t.rotate_left(1);
                for b in t.iter_mut() {
                    *b = sbox(*b);
                }
                if let Some(first) = t.first_mut() {
                    *first ^= RCON.get(i / 4 - 1).copied().unwrap_or(0);
                }
            }
            let prev = words.get(i - 4).copied().unwrap_or_default();
            for (b, p) in t.iter_mut().zip(prev.iter()) {
                *b ^= *p;
            }
            words.push(t);
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (rk, four_words) in round_keys.iter_mut().zip(words.chunks_exact(4)) {
            for (dst, w) in rk.chunks_exact_mut(4).zip(four_words.iter()) {
                dst.copy_from_slice(w);
            }
        }
        Aes128Ctr { round_keys }
    }

    /// Encrypts one block (used only to generate keystream).
    fn encrypt_block(&self, block: [u8; 16]) -> [u8; 16] {
        let mut s = block;
        let mut rounds = self.round_keys.iter();
        if let Some(k0) = rounds.next() {
            xor16(&mut s, k0);
        }
        for (round, key) in rounds.enumerate() {
            sub_bytes(&mut s);
            shift_rows(&mut s);
            if round < 9 {
                mix_columns(&mut s);
            }
            xor16(&mut s, key);
        }
        s
    }

    /// XORs the CTR keystream for `counter_block` (incremented in its
    /// trailing 32 bits per 16-byte block) into `data`. Applying it
    /// twice with the same parameters restores the plaintext.
    pub fn apply_keystream(&self, counter_block: &[u8; 16], data: &mut [u8]) {
        for (block_index, chunk) in data.chunks_mut(16).enumerate() {
            let mut counter = *counter_block;
            let mut tail = [0u8; 4];
            for (b, c) in tail.iter_mut().zip(counter.iter().skip(12)) {
                *b = *c;
            }
            let start = u32::from_be_bytes(tail);
            let index = u32::try_from(block_index).unwrap_or(u32::MAX);
            let bumped = start.wrapping_add(index).to_be_bytes();
            for (c, b) in counter.iter_mut().skip(12).zip(bumped.iter()) {
                *c = *b;
            }
            let keystream = self.encrypt_block(counter);
            for (b, k) in chunk.iter_mut().zip(keystream.iter()) {
                *b ^= *k;
            }
        }
    }
}

/// The counter block of a flood payload: originator address and packet
/// id in the leading bytes, zero elsewhere. Every `(origin, id)` pair —
/// exactly the flood's dedup key — gets a distinct keystream under one
/// key, and both ends can derive it from the cleartext header alone.
#[must_use]
pub fn flood_counter_block(origin: Address, id: u8) -> [u8; 16] {
    let addr = origin.value().to_le_bytes();
    let mut block = [0u8; 16];
    for (dst, src) in block.iter_mut().zip(addr.iter()) {
        *dst = *src;
    }
    if let Some(slot) = block.get_mut(2) {
        *slot = id;
    }
    block
}

#[cfg(test)]
mod tests {
    use super::*;
    use alloc::vec;

    /// FIPS-197 appendix C.1: AES-128 single-block known answer.
    #[test]
    fn fips_197_known_answer() {
        let key: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let plain: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let expected: [u8; 16] = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let cipher = Aes128Ctr::new(&key);
        assert_eq!(cipher.encrypt_block(plain), expected);
    }

    /// NIST SP 800-38A F.5.1: CTR-AES128 first two blocks.
    #[test]
    fn sp800_38a_ctr_known_answer() {
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let counter: [u8; 16] = [
            0xf0, 0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa, 0xfb, 0xfc, 0xfd,
            0xfe, 0xff,
        ];
        let mut data = vec![
            0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
            0x17, 0x2a, // block 1
            0xae, 0x2d, 0x8a, 0x57, 0x1e, 0x03, 0xac, 0x9c, 0x9e, 0xb7, 0x6f, 0xac, 0x45, 0xaf,
            0x8e, 0x51, // block 2
        ];
        let expected = vec![
            0x87, 0x4d, 0x61, 0x91, 0xb6, 0x20, 0xe3, 0x26, 0x1b, 0xef, 0x68, 0x64, 0x99, 0x0d,
            0xb6, 0xce, 0x98, 0x06, 0xf6, 0x6b, 0x79, 0x70, 0xfd, 0xff, 0x86, 0x17, 0x18, 0x7b,
            0xb9, 0xff, 0xfd, 0xff,
        ];
        let cipher = Aes128Ctr::new(&key);
        cipher.apply_keystream(&counter, &mut data);
        assert_eq!(data, expected);
    }

    #[test]
    fn keystream_is_an_involution() {
        let cipher = Aes128Ctr::new(b"sixteen byte key");
        let counter = flood_counter_block(Address::new(0x1234), 7);
        let original: Vec<u8> = (0..100u8).collect();
        let mut data = original.clone();
        cipher.apply_keystream(&counter, &mut data);
        assert_ne!(data, original, "keystream must change the payload");
        cipher.apply_keystream(&counter, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn distinct_flood_keys_get_distinct_keystreams() {
        let cipher = Aes128Ctr::new(b"sixteen byte key");
        let mut a = vec![0u8; 16];
        let mut b = vec![0u8; 16];
        let mut c = vec![0u8; 16];
        cipher.apply_keystream(&flood_counter_block(Address::new(1), 0), &mut a);
        cipher.apply_keystream(&flood_counter_block(Address::new(1), 1), &mut b);
        cipher.apply_keystream(&flood_counter_block(Address::new(2), 0), &mut c);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn debug_never_leaks_key_material() {
        let cipher = Aes128Ctr::new(&[0xAA; 16]);
        let shown = alloc::format!("{cipher:?}");
        assert!(!shown.contains("170"), "round key bytes leaked: {shown}");
        assert!(shown.contains(".."));
    }
}
