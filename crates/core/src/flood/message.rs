//! Typed application messages for the flooding stack.
//!
//! Meshtastic multiplexes application traffic over numbered ports; the
//! four message types its deployments live on — text, position,
//! node-info and telemetry — are reproduced here with a compact binary
//! encoding: one port byte, then the port-specific body. The port
//! numbers match Meshtastic's so the mapping is recognisable
//! (`TEXT_MESSAGE_APP = 1`, `POSITION_APP = 3`, `NODEINFO_APP = 4`,
//! `TELEMETRY_APP = 67`).
//!
//! Like the frame codec, decoding operates on untrusted over-the-air
//! bytes and must return `Err`, never panic: all reads are
//! bounds-checked and strings decode lossily.

#![deny(clippy::indexing_slicing)]

use alloc::string::String;
use alloc::vec::Vec;

use crate::cast::sat_u8;
use crate::error::CodecError;

/// Port byte of [`FloodMessage::Text`].
pub const PORT_TEXT: u8 = 1;
/// Port byte of [`FloodMessage::Position`].
pub const PORT_POSITION: u8 = 3;
/// Port byte of [`FloodMessage::NodeInfo`].
pub const PORT_NODE_INFO: u8 = 4;
/// Port byte of [`FloodMessage::Telemetry`].
pub const PORT_TELEMETRY: u8 = 67;

/// A typed application message carried in a flood payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FloodMessage {
    /// A UTF-8 text message.
    Text(String),
    /// A position report in 1e-7 degree fixed point (Meshtastic's
    /// integer-degree convention, which survives no-FPU targets).
    Position {
        /// Latitude × 1e7.
        latitude_i: i32,
        /// Longitude × 1e7.
        longitude_i: i32,
        /// Altitude above sea level in metres.
        altitude_m: i32,
    },
    /// An identity beacon.
    NodeInfo {
        /// Stable hardware id.
        id: u32,
        /// Human-readable name (truncated to 255 bytes on the wire).
        long_name: String,
        /// Short display name (truncated to 255 bytes on the wire).
        short_name: String,
        /// Hardware model discriminator.
        hw_model: u8,
    },
    /// A device-metrics report.
    Telemetry {
        /// Battery level, 0–100 (255 = externally powered).
        battery_pct: u8,
        /// Battery voltage in millivolts.
        voltage_mv: u16,
        /// Channel utilisation percentage observed by the node.
        channel_util_pct: u8,
        /// Seconds since boot.
        uptime_s: u32,
    },
}

/// Bounds-checked cursor over an untrusted message body.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.saturating_add(n);
        let chunk = self.bytes.get(self.pos..end).ok_or(CodecError::Truncated {
            needed: end,
            got: self.bytes.len(),
        })?;
        self.pos = end;
        Ok(chunk)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?.first().copied().unwrap_or(0))
    }

    fn u16_le(&mut self) -> Result<u16, CodecError> {
        let mut b = [0u8; 2];
        b.copy_from_slice(self.take(2)?);
        Ok(u16::from_le_bytes(b))
    }

    fn u32_le(&mut self) -> Result<u32, CodecError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(b))
    }

    fn i32_le(&mut self) -> Result<i32, CodecError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(i32::from_le_bytes(b))
    }

    /// A u8-length-prefixed string, decoded lossily (corruption turns
    /// into replacement characters, never an error or a panic).
    fn string(&mut self) -> Result<String, CodecError> {
        let len = usize::from(self.u8()?);
        Ok(String::from_utf8_lossy(self.take(len)?).into_owned())
    }

    fn finish(self) -> Result<(), CodecError> {
        let left = self.bytes.len().saturating_sub(self.pos);
        if left == 0 {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes(left))
        }
    }
}

/// Appends a u8-length-prefixed string, truncating to 255 bytes on a
/// character boundary.
fn put_string(out: &mut Vec<u8>, s: &str) {
    let mut end = s.len().min(255);
    while end > 0 && !s.is_char_boundary(end) {
        end -= 1;
    }
    let bytes = s.as_bytes().get(..end).unwrap_or(&[]);
    out.push(sat_u8(bytes.len()));
    out.extend_from_slice(bytes);
}

impl FloodMessage {
    /// The message's port byte.
    #[must_use]
    pub fn port(&self) -> u8 {
        match self {
            FloodMessage::Text(_) => PORT_TEXT,
            FloodMessage::Position { .. } => PORT_POSITION,
            FloodMessage::NodeInfo { .. } => PORT_NODE_INFO,
            FloodMessage::Telemetry { .. } => PORT_TELEMETRY,
        }
    }

    /// Encodes the message as a flood payload: port byte + body.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(self.port());
        match self {
            FloodMessage::Text(text) => {
                // Text owns the rest of the payload: no length prefix,
                // so the 255-byte string cap does not apply.
                out.extend_from_slice(text.as_bytes());
            }
            FloodMessage::Position {
                latitude_i,
                longitude_i,
                altitude_m,
            } => {
                out.extend_from_slice(&latitude_i.to_le_bytes());
                out.extend_from_slice(&longitude_i.to_le_bytes());
                out.extend_from_slice(&altitude_m.to_le_bytes());
            }
            FloodMessage::NodeInfo {
                id,
                long_name,
                short_name,
                hw_model,
            } => {
                out.extend_from_slice(&id.to_le_bytes());
                put_string(&mut out, long_name);
                put_string(&mut out, short_name);
                out.push(*hw_model);
            }
            FloodMessage::Telemetry {
                battery_pct,
                voltage_mv,
                channel_util_pct,
                uptime_s,
            } => {
                out.push(*battery_pct);
                out.extend_from_slice(&voltage_mv.to_le_bytes());
                out.push(*channel_util_pct);
                out.extend_from_slice(&uptime_s.to_le_bytes());
            }
        }
        out
    }

    /// Decodes a flood payload produced by [`FloodMessage::encode`].
    ///
    /// # Errors
    ///
    /// * [`CodecError::Truncated`] — the body is shorter than the port
    ///   requires.
    /// * [`CodecError::UnknownKind`] — the port byte is not one of the
    ///   four known applications.
    /// * [`CodecError::TrailingBytes`] — a fixed-size body carries
    ///   extra bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(payload);
        let port = r.u8()?;
        match port {
            PORT_TEXT => {
                let rest = r.take(payload.len().saturating_sub(1))?;
                Ok(FloodMessage::Text(
                    String::from_utf8_lossy(rest).into_owned(),
                ))
            }
            PORT_POSITION => {
                let msg = FloodMessage::Position {
                    latitude_i: r.i32_le()?,
                    longitude_i: r.i32_le()?,
                    altitude_m: r.i32_le()?,
                };
                r.finish()?;
                Ok(msg)
            }
            PORT_NODE_INFO => {
                let msg = FloodMessage::NodeInfo {
                    id: r.u32_le()?,
                    long_name: r.string()?,
                    short_name: r.string()?,
                    hw_model: r.u8()?,
                };
                r.finish()?;
                Ok(msg)
            }
            PORT_TELEMETRY => {
                let msg = FloodMessage::Telemetry {
                    battery_pct: r.u8()?,
                    voltage_mv: r.u16_le()?,
                    channel_util_pct: r.u8()?,
                    uptime_s: r.u32_le()?,
                };
                r.finish()?;
                Ok(msg)
            }
            other => Err(CodecError::UnknownKind(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alloc::string::ToString;
    use alloc::vec;

    fn round_trip(msg: FloodMessage) {
        let wire = msg.encode();
        assert_eq!(FloodMessage::decode(&wire), Ok(msg));
    }

    #[test]
    fn every_kind_round_trips() {
        round_trip(FloodMessage::Text("hello mesh".to_string()));
        round_trip(FloodMessage::Position {
            latitude_i: 413_850_000,
            longitude_i: 21_683_000,
            altitude_m: -12,
        });
        round_trip(FloodMessage::NodeInfo {
            id: 0xDEAD_BEEF,
            long_name: "Gateway über alles".to_string(),
            short_name: "GW1".to_string(),
            hw_model: 9,
        });
        round_trip(FloodMessage::Telemetry {
            battery_pct: 87,
            voltage_mv: 3912,
            channel_util_pct: 14,
            uptime_s: 86_400,
        });
    }

    #[test]
    fn empty_text_round_trips() {
        round_trip(FloodMessage::Text(String::new()));
    }

    #[test]
    fn long_names_truncate_on_char_boundaries() {
        let msg = FloodMessage::NodeInfo {
            id: 1,
            long_name: "é".repeat(200), // 400 bytes of 2-byte chars
            short_name: String::new(),
            hw_model: 0,
        };
        let wire = msg.encode();
        match FloodMessage::decode(&wire) {
            Ok(FloodMessage::NodeInfo { long_name, .. }) => {
                assert_eq!(long_name, "é".repeat(127)); // 254 bytes fit
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_port_and_truncation_are_errors_not_panics() {
        assert_eq!(
            FloodMessage::decode(&[200]),
            Err(CodecError::UnknownKind(200))
        );
        assert!(matches!(
            FloodMessage::decode(&[PORT_POSITION, 1, 2]),
            Err(CodecError::Truncated { .. })
        ));
        assert!(matches!(
            FloodMessage::decode(&[]),
            Err(CodecError::Truncated { .. })
        ));
        // Trailing garbage after a fixed-size body is rejected, so a
        // decoded message always re-encodes to the exact input.
        let mut wire = FloodMessage::Telemetry {
            battery_pct: 1,
            voltage_mv: 2,
            channel_util_pct: 3,
            uptime_s: 4,
        }
        .encode();
        wire.push(0xFF);
        assert_eq!(
            FloodMessage::decode(&wire),
            Err(CodecError::TrailingBytes(1))
        );
    }

    #[test]
    fn corrupt_utf8_decodes_lossily() {
        let wire = vec![PORT_TEXT, 0xFF, 0xFE, b'a'];
        match FloodMessage::decode(&wire) {
            Ok(FloodMessage::Text(t)) => assert!(t.ends_with('a')),
            other => panic!("unexpected {other:?}"),
        }
    }
}
