//! The duplicate-suppression cache: a bounded FIFO set over
//! `(origin, packet id)` keys.
//!
//! Managed flooding has no routing state; the only thing a node must
//! remember is which floods it has already taken part in. The cache is
//! a `BTreeSet` (meshlint rule D1: iteration order never leaks hasher
//! state into traces) paired with a FIFO eviction queue so memory stays
//! bounded no matter how long the node runs.

use alloc::collections::{BTreeSet, VecDeque};

use crate::addr::Address;

/// A bounded first-in-first-out set of flood keys.
#[derive(Debug)]
pub(crate) struct DedupCache {
    seen: BTreeSet<(Address, u8)>,
    order: VecDeque<(Address, u8)>,
    capacity: usize,
}

impl DedupCache {
    /// A cache remembering at most `capacity` keys (clamped to ≥ 1).
    pub(crate) fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        DedupCache {
            seen: BTreeSet::new(),
            order: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Records `(origin, id)`. Returns `true` when the key is new —
    /// i.e. this node has not taken part in the flood yet — evicting
    /// the oldest remembered key if the cache is full.
    pub(crate) fn insert(&mut self, origin: Address, id: u8) -> bool {
        if self.seen.contains(&(origin, id)) {
            return false;
        }
        if self.order.len() == self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.seen.remove(&old);
            }
        }
        self.seen.insert((origin, id));
        self.order.push_back((origin, id));
        true
    }

    /// Number of keys currently remembered.
    pub(crate) fn len(&self) -> usize {
        self.seen.len()
    }

    /// The configured capacity.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Address = Address::new(1);
    const B: Address = Address::new(2);

    #[test]
    fn first_insert_is_new_second_is_duplicate() {
        let mut c = DedupCache::new(8);
        assert!(c.insert(A, 0));
        assert!(!c.insert(A, 0));
        assert!(c.insert(A, 1));
        assert!(c.insert(B, 0));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn eviction_is_fifo_and_len_stays_bounded() {
        let mut c = DedupCache::new(2);
        assert!(c.insert(A, 0));
        assert!(c.insert(A, 1));
        assert!(c.insert(A, 2)); // evicts (A, 0)
        assert_eq!(c.len(), 2);
        assert!(c.insert(A, 0), "evicted key must read as new again");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut c = DedupCache::new(0);
        assert_eq!(c.capacity(), 1);
        assert!(c.insert(A, 0));
        assert!(!c.insert(A, 0));
    }
}
