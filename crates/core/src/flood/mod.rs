//! The managed-flooding stack: [`FloodNode`] — Meshtastic-style
//! routing-free meshing as a first-class protocol.
//!
//! Managed flooding keeps no routing state. Every packet carries its
//! originator, an id and a hop limit; a node that hears a packet it has
//! not seen before (a) delivers it if it is the destination or the
//! packet is a broadcast, and (b) schedules a rebroadcast with the hop
//! limit decremented, after a randomised delay that decorrelates
//! simultaneous relays. Duplicate suppression uses the bounded
//! `(origin, id)` [`dedup::DedupCache`].
//!
//! The stack reuses the shared LoRaMesher plumbing wholesale — the
//! [`crate::stack::bus::Bus`] (one deterministic RNG per node, the
//! transmit queue, the [`MeshEvent`] queue, the stats counters) and the
//! [`crate::stack::mac::MacLayer`] (CAD/backoff/duty-cycle channel
//! access) — so the two protocols differ *only* above the MAC, and
//! airtime comparisons between them measure protocol overhead, not
//! implementation drift. The wire format reuses the LoRaMesher `Data`
//! packet with `via` set to broadcast (there is no designated next
//! hop), making frame sizes identical between the stacks.
//!
//! # Dispatch order
//!
//! As with [`crate::stack`], determinism requires a fixed order per
//! timer tick. `FloodNode::process_due` runs, in this order and nothing
//! else:
//!
//! 1. **flood** — move due rebroadcasts into the transmit queue (in
//!    arrival order);
//! 2. **mac** — one chance to move queued traffic to the radio.
//!
//! The node draws from its single RNG stream only on relay scheduling
//! (one draw per accepted flood) and inside the MAC backoff — the same
//! discipline the LoRaMesher stack follows, so both protocols replay
//! identically from a seed under every engine.
//!
//! # Rebroadcast timing
//!
//! The relay delay is SNR- and contention-weighted, following
//! Meshtastic's contention-window design: a node that heard the packet
//! *weakly* is probably near the edge of the flood, so its rebroadcast
//! extends coverage the most — it draws from a *shorter* window and
//! tends to fire first, which lets better-placed relays win the channel
//! and everyone else suppress the duplicate. Nodes with a backlog add
//! one backoff slot per queued frame so congested relays defer to idle
//! ones.
//!
//! # Payload encryption
//!
//! With the `crypto` feature enabled and a key configured, application
//! payloads are AES-128-CTR encrypted end to end: the originator
//! encrypts, relays forward the ciphertext verbatim, and only nodes
//! holding the channel key decrypt on delivery (see [`crypto`]).

pub(crate) mod dedup;
pub mod message;

#[cfg(feature = "crypto")]
pub mod crypto;

use alloc::vec::Vec;
use core::time::Duration;

use lora_phy::link::SignalQuality;
use lora_phy::modulation::LoRaModulation;
use lora_phy::region::Region;

use crate::addr::Address;
use crate::codec;
use crate::config::MeshConfig;
use crate::driver::{NodeProtocol, RadioIo};
use crate::error::SendError;
use crate::packet::{Forwarding, Packet};
use crate::stack::app;
use crate::stack::bus::Bus;
use crate::stack::mac::{MacLayer, NoWireCache};

pub use crate::stack::app::MeshEvent;
use dedup::DedupCache;
pub use message::FloodMessage;

/// Configuration of a [`FloodNode`].
#[derive(Clone, Debug)]
pub struct FloodConfig {
    /// This node's address.
    pub address: Address,
    /// The radio profile (must match the network's).
    pub modulation: LoRaModulation,
    /// Regulatory region for the duty cycle.
    pub region: Region,
    /// Initial hop limit of originated packets (= maximum flood
    /// radius).
    pub hop_limit: u8,
    /// Upper bound of the rebroadcast delay window (scaled down by
    /// received SNR; see the [module docs](self)).
    pub rebroadcast_window: Duration,
    /// Duplicate-suppression cache size.
    pub seen_cache: usize,
    /// Transmit queue capacity.
    pub tx_queue_capacity: usize,
    /// CSMA backoff slot (also the per-queued-frame contention delay).
    pub backoff_slot: Duration,
    /// Maximum CSMA backoff exponent.
    pub max_backoff_exponent: u32,
    /// CAD retries before dropping a frame.
    pub max_cad_retries: u32,
    /// Listen-before-talk (CAD) on, or the ALOHA ablation.
    pub csma: bool,
    /// Randomness seed (defaults to the address).
    pub seed: u64,
    /// AES-128 channel key; `None` sends cleartext.
    #[cfg(feature = "crypto")]
    pub key: Option<[u8; 16]>,
}

impl FloodConfig {
    /// A configuration with LoRaMesher-compatible MAC defaults.
    #[must_use]
    pub fn new(address: Address) -> Self {
        FloodConfig {
            address,
            modulation: LoRaModulation::default(),
            region: Region::Eu868,
            hop_limit: 7,
            rebroadcast_window: Duration::from_millis(500),
            seen_cache: 128,
            tx_queue_capacity: 32,
            backoff_slot: Duration::from_millis(100),
            max_backoff_exponent: 6,
            max_cad_retries: 16,
            csma: true,
            seed: u64::from(address.value()),
            #[cfg(feature = "crypto")]
            key: None,
        }
    }

    /// The shared-MAC view of this configuration: the [`MacLayer`] and
    /// the frame codec read radio and channel-access parameters through
    /// [`MeshConfig`], so the flood stack derives one with matching
    /// fields (the routing/transport fields it carries are never read).
    fn mac_config(&self) -> MeshConfig {
        MeshConfig::builder(self.address)
            .modulation(self.modulation)
            .region(self.region)
            .tx_queue_capacity(self.tx_queue_capacity)
            .backoff_slot(self.backoff_slot)
            .max_backoff_exponent(self.max_backoff_exponent)
            .max_cad_retries(self.max_cad_retries)
            .csma(self.csma)
            .seed(self.seed)
            .build()
    }
}

/// A snapshot of a flooding node's counters: the shared MAC/channel
/// counters plus the flood-specific ones.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FloodStats {
    /// Frames transmitted (originated + relayed + retries).
    pub frames_sent: u64,
    /// Total airtime transmitted.
    pub airtime: Duration,
    /// Frames that failed to decode.
    pub decode_errors: u64,
    /// Transmit-queue refusals (backpressure).
    pub queue_refusals: u64,
    /// Payloads delivered to the application.
    pub data_delivered: u64,
    /// Transmissions deferred by the duty-cycle budget.
    pub duty_cycle_deferrals: u64,
    /// Frames dropped after exhausting CAD retries.
    pub cad_exhausted: u64,
    /// Floods originated by this node.
    pub originated: u64,
    /// Packets this node has rebroadcast for others.
    pub relayed: u64,
    /// Duplicates suppressed by the seen-cache.
    pub duplicates_suppressed: u64,
    /// Floods that died here because their hop limit was spent.
    pub hop_limit_drops: u64,
}

/// A pending (delayed) rebroadcast.
#[derive(Debug)]
struct PendingRelay {
    at: Duration,
    packet: Packet,
}

/// A managed-flooding node. Sans-IO, `no_std`, hosted through the same
/// [`NodeProtocol`] interface as [`crate::MeshNode`].
#[derive(Debug)]
pub struct FloodNode {
    config: FloodConfig,
    /// The MAC's view of the radio parameters (see
    /// [`FloodConfig::mac_config`]).
    mac_config: MeshConfig,
    bus: Bus,
    mac: MacLayer,
    seen: DedupCache,
    pending: Vec<PendingRelay>,
    #[cfg(feature = "crypto")]
    cipher: Option<crypto::Aes128Ctr>,
    started: bool,
    originated: u64,
    relayed: u64,
    duplicates_suppressed: u64,
    hop_limit_drops: u64,
}

impl FloodNode {
    /// Creates a node from its configuration.
    #[must_use]
    pub fn new(config: FloodConfig) -> Self {
        let mac_config = config.mac_config();
        FloodNode {
            bus: Bus::new(config.seed, config.tx_queue_capacity),
            mac: MacLayer::new(&mac_config),
            seen: DedupCache::new(config.seen_cache),
            pending: Vec::new(),
            #[cfg(feature = "crypto")]
            cipher: config.key.as_ref().map(crypto::Aes128Ctr::new),
            started: false,
            originated: 0,
            relayed: 0,
            duplicates_suppressed: 0,
            hop_limit_drops: 0,
            mac_config,
            config,
        }
    }

    /// This node's address.
    #[must_use]
    pub fn address(&self) -> Address {
        self.config.address
    }

    /// The node's configuration.
    #[must_use]
    pub fn config(&self) -> &FloodConfig {
        &self.config
    }

    /// A snapshot of the node's counters.
    #[must_use]
    pub fn stats(&self) -> FloodStats {
        FloodStats {
            frames_sent: self.bus.stats.frames_sent,
            airtime: self.bus.stats.airtime,
            decode_errors: self.bus.stats.decode_errors,
            queue_refusals: self.bus.stats.queue_refusals,
            data_delivered: self.bus.stats.data_delivered,
            duty_cycle_deferrals: self.mac.mac.duty_deferrals,
            cad_exhausted: self.mac.mac.cad_drops,
            originated: self.originated,
            relayed: self.relayed,
            duplicates_suppressed: self.duplicates_suppressed,
            hop_limit_drops: self.hop_limit_drops,
        }
    }

    /// Drains the pending application events.
    pub fn take_events(&mut self) -> Vec<MeshEvent> {
        self.bus.events.drain(..).collect()
    }

    /// Outbound frames currently queued (diagnostics).
    #[must_use]
    pub fn tx_queue_len(&self) -> usize {
        self.bus.txq.len()
    }

    /// Rebroadcasts waiting for their delay to elapse (diagnostics).
    #[must_use]
    pub fn pending_relays(&self) -> usize {
        self.pending.len()
    }

    /// Keys currently remembered by the duplicate-suppression cache.
    #[must_use]
    pub fn seen_len(&self) -> usize {
        self.seen.len()
    }

    /// The duplicate-suppression cache's configured bound.
    #[must_use]
    pub fn seen_capacity(&self) -> usize {
        self.seen.capacity()
    }

    /// Submits a raw datagram to flood toward `dst` (or broadcast).
    ///
    /// Returns the packet id on success. With a `crypto` key configured
    /// the payload rides the air encrypted.
    ///
    /// # Errors
    ///
    /// * [`SendError::EmptyPayload`] — nothing to send.
    /// * [`SendError::PayloadTooLarge`] — exceeds the single-frame
    ///   limit ([`codec::MAX_DATA_PAYLOAD`]).
    /// * [`SendError::QueueFull`] — the transmit queue refused the
    ///   frame.
    pub fn send_datagram(&mut self, dst: Address, payload: Vec<u8>) -> Result<u8, SendError> {
        if payload.is_empty() {
            return Err(SendError::EmptyPayload);
        }
        if payload.len() > codec::MAX_DATA_PAYLOAD {
            return Err(SendError::PayloadTooLarge {
                len: payload.len(),
                max: codec::MAX_DATA_PAYLOAD,
            });
        }
        let id = self.bus.next_id();
        let payload = self.seal(id, payload);
        let packet = Packet::Data {
            dst,
            src: self.config.address,
            id,
            fwd: Forwarding {
                via: Address::BROADCAST,
                ttl: self.config.hop_limit,
            },
            payload,
        };
        // Mark our own flood as seen so echoes are not relayed.
        self.seen.insert(self.config.address, id);
        if !self.bus.enqueue(packet) {
            return Err(SendError::QueueFull);
        }
        self.originated += 1;
        self.bus.stats.data_originated += 1;
        Ok(id)
    }

    /// Submits a typed [`FloodMessage`] to flood toward `dst` (or
    /// broadcast).
    ///
    /// # Errors
    ///
    /// As [`FloodNode::send_datagram`] (a message never encodes empty).
    pub fn send_message(&mut self, dst: Address, message: &FloodMessage) -> Result<u8, SendError> {
        self.send_datagram(dst, message.encode())
    }

    /// Encrypts an outbound payload when a channel key is configured.
    #[cfg(feature = "crypto")]
    fn seal(&self, id: u8, mut payload: Vec<u8>) -> Vec<u8> {
        if let Some(cipher) = &self.cipher {
            let counter = crypto::flood_counter_block(self.config.address, id);
            cipher.apply_keystream(&counter, &mut payload);
        }
        payload
    }

    #[cfg(not(feature = "crypto"))]
    fn seal(&self, _id: u8, payload: Vec<u8>) -> Vec<u8> {
        payload
    }

    /// Decrypts a delivered payload when a channel key is configured
    /// (relays never call this: they forward ciphertext verbatim).
    #[cfg(feature = "crypto")]
    fn unseal(&self, origin: Address, id: u8, mut payload: Vec<u8>) -> Vec<u8> {
        if let Some(cipher) = &self.cipher {
            let counter = crypto::flood_counter_block(origin, id);
            cipher.apply_keystream(&counter, &mut payload);
        }
        payload
    }

    #[cfg(not(feature = "crypto"))]
    fn unseal(&self, _origin: Address, _id: u8, payload: Vec<u8>) -> Vec<u8> {
        payload
    }

    /// The relay delay for a flood heard at `snr` dB: one RNG draw from
    /// an SNR-scaled window, plus one backoff slot per already-queued
    /// frame. See the [module docs](self) for the rationale.
    fn relay_delay(&mut self, snr: f64) -> Duration {
        let edge = ((snr + 20.0) / 30.0).clamp(0.0, 1.0);
        let window = self.config.rebroadcast_window.mul_f64(0.25 + 0.75 * edge);
        let bound_us = u64::try_from(window.as_micros()).unwrap_or(u64::MAX).max(1);
        let jitter = Duration::from_micros(self.bus.rng.gen_range(bound_us));
        let backlog = u32::try_from(self.bus.txq.len()).unwrap_or(u32::MAX);
        jitter.saturating_add(self.config.backoff_slot.saturating_mul(backlog))
    }

    /// Steps 1 + 2 of the dispatch order (see the [module docs](self)).
    fn process_due(&mut self, now: Duration, io: &mut RadioIo) {
        // 1. Move due rebroadcasts into the transmit queue, preserving
        //    arrival order.
        let (due, later): (Vec<_>, Vec<_>) =
            self.pending.drain(..).partition(|relay| relay.at <= now);
        self.pending = later;
        for relay in due {
            if self.bus.enqueue(relay.packet) {
                self.relayed += 1;
                self.bus.stats.forwarded += 1;
            }
        }
        // 2. Give the MAC a chance to move traffic.
        self.mac
            .pump(now, &self.mac_config, &mut self.bus, &mut NoWireCache, io);
    }
}

impl NodeProtocol for FloodNode {
    fn on_start(&mut self, _io: &mut RadioIo) {
        self.started = true;
    }

    fn on_timer(&mut self, io: &mut RadioIo) {
        self.process_due(io.now(), io);
    }

    fn on_frame(&mut self, frame: &[u8], quality: SignalQuality, io: &mut RadioIo) {
        let now = io.now();
        let packet = match codec::decode(frame) {
            Ok(p) => p,
            Err(_) => {
                self.bus.stats.decode_errors += 1;
                return;
            }
        };
        let Packet::Data {
            dst,
            src,
            id,
            fwd,
            payload,
        } = packet
        else {
            return; // flooding only speaks Data
        };
        if src == self.config.address {
            // An echo of our own flood coming back — normal in a
            // flooding mesh, and already in the seen-cache anyway.
            return;
        }
        if !self.seen.insert(src, id) {
            self.duplicates_suppressed += 1;
            return;
        }
        let for_me = dst == self.config.address;
        if for_me {
            let clear = self.unseal(src, id, payload.clone());
            app::deliver_datagram(&mut self.bus, src, clear);
        } else if dst.is_broadcast() {
            let clear = self.unseal(src, id, payload.clone());
            app::deliver_broadcast(&mut self.bus, src, clear);
        }
        // Relay unless we are the final destination or the hop limit is
        // spent. The relayed payload is the received one verbatim —
        // under `crypto` that is the ciphertext.
        if for_me {
            return;
        }
        if fwd.ttl <= 1 {
            self.hop_limit_drops += 1;
            self.bus.stats.ttl_expired += 1;
            return;
        }
        let delay = self.relay_delay(quality.snr);
        self.pending.push(PendingRelay {
            at: now + delay,
            packet: Packet::Data {
                dst,
                src,
                id,
                fwd: Forwarding {
                    via: Address::BROADCAST,
                    ttl: fwd.ttl - 1,
                },
                payload,
            },
        });
    }

    fn on_tx_done(&mut self, _io: &mut RadioIo) {
        self.mac.on_tx_done();
    }

    fn on_cad_done(&mut self, busy: bool, io: &mut RadioIo) {
        self.mac.on_cad_done(
            busy,
            io.now(),
            &self.mac_config,
            &mut self.bus,
            &mut NoWireCache,
            io,
        );
    }

    fn next_wake(&self) -> Option<Duration> {
        if !self.started {
            return None;
        }
        let mut wake: Option<Duration> = None;
        let mut consider = |t: Option<Duration>| {
            if let Some(t) = t {
                wake = Some(wake.map_or(t, |w| w.min(t)));
            }
        };
        if self.mac.is_ready() && !self.bus.txq.is_empty() {
            consider(Some(Duration::ZERO)); // immediate
        }
        consider(self.mac.next_wake());
        consider(self.pending.iter().map(|p| p.at).min());
        wake
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::RadioRequest;
    use alloc::sync::Arc;
    use alloc::vec;
    use alloc::vec::Vec;

    const A1: Address = Address::new(1);
    const A2: Address = Address::new(2);
    const A3: Address = Address::new(3);

    fn node(addr: Address) -> FloodNode {
        let mut cfg = FloodConfig::new(addr);
        cfg.region = Region::Unlimited;
        FloodNode::new(cfg)
    }

    fn start(n: &mut FloodNode) {
        let mut io = RadioIo::new(Duration::ZERO);
        n.on_start(&mut io);
        assert!(io.take_requests().is_empty());
    }

    fn frame_in(n: &mut FloodNode, frame: &[u8], now: Duration) {
        frame_in_at_snr(n, frame, now, SignalQuality::ideal());
    }

    fn frame_in_at_snr(n: &mut FloodNode, frame: &[u8], now: Duration, q: SignalQuality) {
        let mut io = RadioIo::new(now);
        n.on_frame(frame, q, &mut io);
    }

    /// Drains one node's radio work, returning transmitted frames.
    fn drain(n: &mut FloodNode, now: Duration) -> Vec<Arc<[u8]>> {
        let mut frames = Vec::new();
        let mut io = RadioIo::new(now);
        n.on_timer(&mut io);
        let mut requests = io.take_requests();
        let mut guard = 0;
        while let Some(req) = requests.pop() {
            guard += 1;
            assert!(guard < 100, "runaway radio loop");
            let mut io = RadioIo::new(now);
            match req {
                RadioRequest::StartCad => n.on_cad_done(false, &mut io),
                RadioRequest::Transmit(f) => {
                    frames.push(f);
                    n.on_tx_done(&mut io);
                }
            }
            requests.extend(io.take_requests());
        }
        frames
    }

    #[test]
    fn send_validations() {
        let mut n = node(A1);
        start(&mut n);
        assert_eq!(n.send_datagram(A2, vec![]), Err(SendError::EmptyPayload));
        assert!(matches!(
            n.send_datagram(A2, vec![0; 4000]),
            Err(SendError::PayloadTooLarge { .. })
        ));
        assert!(n.send_datagram(A2, vec![1, 2]).is_ok());
        assert_eq!(n.stats().originated, 1);
    }

    #[test]
    fn originated_packet_is_transmitted() {
        let mut n = node(A1);
        start(&mut n);
        n.send_datagram(A2, b"x".to_vec()).unwrap();
        assert_eq!(n.next_wake(), Some(Duration::ZERO));
        let frames = drain(&mut n, Duration::ZERO);
        assert_eq!(frames.len(), 1);
        assert_eq!(n.stats().frames_sent, 1);
        assert!(n.stats().airtime > Duration::ZERO);
    }

    #[test]
    fn destination_delivers_and_does_not_relay() {
        let mut a = node(A1);
        let mut b = node(A2);
        start(&mut a);
        start(&mut b);
        a.send_datagram(A2, b"hi".to_vec()).unwrap();
        let frames = drain(&mut a, Duration::ZERO);
        frame_in(&mut b, &frames[0], Duration::ZERO);
        assert_eq!(
            b.take_events(),
            vec![MeshEvent::Datagram {
                src: A1,
                payload: b"hi".to_vec()
            }]
        );
        // B was the destination: nothing to relay, no pending work.
        assert!(drain(&mut b, Duration::from_secs(5)).is_empty());
        assert_eq!(b.stats().relayed, 0);
    }

    #[test]
    fn intermediate_node_relays_with_decremented_hop_limit() {
        let mut a = node(A1);
        let mut b = node(A2);
        start(&mut a);
        start(&mut b);
        a.send_datagram(A3, b"fwd".to_vec()).unwrap();
        let frames = drain(&mut a, Duration::ZERO);
        frame_in(&mut b, &frames[0], Duration::ZERO);
        assert_eq!(b.pending_relays(), 1);
        // The relay is delayed: due within the configured window.
        let relayed = drain(&mut b, Duration::from_secs(1));
        assert_eq!(relayed.len(), 1);
        assert_eq!(b.stats().relayed, 1);
        match codec::decode(&relayed[0]).unwrap() {
            Packet::Data { src, dst, fwd, .. } => {
                assert_eq!(src, A1);
                assert_eq!(dst, A3);
                assert_eq!(fwd.via, Address::BROADCAST);
                assert_eq!(fwd.ttl, FloodConfig::new(A1).hop_limit - 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        // B did not deliver a packet that was not for it.
        assert!(b.take_events().is_empty());
    }

    #[test]
    fn duplicates_are_suppressed() {
        let mut a = node(A1);
        let mut b = node(A2);
        start(&mut a);
        start(&mut b);
        a.send_datagram(A3, b"dup".to_vec()).unwrap();
        let frames = drain(&mut a, Duration::ZERO);
        frame_in(&mut b, &frames[0], Duration::ZERO);
        frame_in(&mut b, &frames[0], Duration::ZERO);
        assert_eq!(b.stats().duplicates_suppressed, 1);
        // Only one relay scheduled.
        assert_eq!(drain(&mut b, Duration::from_secs(1)).len(), 1);
    }

    #[test]
    fn broadcast_is_delivered_and_relayed() {
        let mut a = node(A1);
        let mut b = node(A2);
        start(&mut a);
        start(&mut b);
        a.send_datagram(Address::BROADCAST, b"all".to_vec())
            .unwrap();
        let frames = drain(&mut a, Duration::ZERO);
        frame_in(&mut b, &frames[0], Duration::ZERO);
        match b.take_events().as_slice() {
            [MeshEvent::Broadcast { src, payload }] => {
                assert_eq!(*src, A1);
                assert_eq!(payload, b"all");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(drain(&mut b, Duration::from_secs(1)).len(), 1);
    }

    #[test]
    fn hop_limit_one_is_not_relayed() {
        let mut a = FloodNode::new({
            let mut c = FloodConfig::new(A1);
            c.region = Region::Unlimited;
            c.hop_limit = 1;
            c
        });
        let mut b = node(A2);
        start(&mut a);
        start(&mut b);
        a.send_datagram(A3, b"one hop".to_vec()).unwrap();
        let frames = drain(&mut a, Duration::ZERO);
        frame_in(&mut b, &frames[0], Duration::ZERO);
        assert!(drain(&mut b, Duration::from_secs(2)).is_empty());
        assert_eq!(b.stats().relayed, 0);
        assert_eq!(b.stats().hop_limit_drops, 1);
    }

    #[test]
    fn seen_cache_is_bounded() {
        let mut n = FloodNode::new({
            let mut c = FloodConfig::new(A2);
            c.region = Region::Unlimited;
            c.seen_cache = 4;
            c
        });
        start(&mut n);
        for id in 0..10u8 {
            let frame = codec::encode(&Packet::Data {
                dst: A2,
                src: A1,
                id,
                fwd: Forwarding {
                    via: Address::BROADCAST,
                    ttl: 3,
                },
                payload: vec![id],
            })
            .unwrap();
            frame_in(&mut n, &frame, Duration::ZERO);
        }
        assert_eq!(n.seen_len(), 4);
        assert_eq!(n.take_events().len(), 10);
    }

    #[test]
    fn non_data_packets_ignored() {
        let mut n = node(A2);
        start(&mut n);
        let hello = codec::encode(&Packet::Hello {
            src: A1,
            id: 0,
            role: 0,
            entries: vec![],
        })
        .unwrap();
        frame_in(&mut n, &hello, Duration::ZERO);
        assert!(n.take_events().is_empty());
        assert!(n.next_wake().is_none());
    }

    /// A corrupt frame is counted, never panics, never schedules work.
    #[test]
    fn garbage_frames_count_as_decode_errors() {
        let mut n = node(A2);
        start(&mut n);
        frame_in(&mut n, &[0xFF, 0x01], Duration::ZERO);
        assert_eq!(n.stats().decode_errors, 1);
        assert!(n.next_wake().is_none());
    }

    /// The SNR weighting: with identical RNG state, a weakly-heard
    /// flood draws its relay delay from a shorter window than a
    /// strongly-heard one, so edge nodes tend to rebroadcast first.
    #[test]
    fn weak_snr_relays_before_strong_snr() {
        let frame = {
            let mut a = node(A1);
            start(&mut a);
            a.send_datagram(A3, b"edge".to_vec()).unwrap();
            drain(&mut a, Duration::ZERO).remove(0)
        };
        let mut weak = node(A2);
        let mut strong = node(A2); // same seed → same RNG draw
        start(&mut weak);
        start(&mut strong);
        let weak_q = SignalQuality {
            snr: -15.0,
            ..SignalQuality::ideal()
        };
        frame_in_at_snr(&mut weak, &frame, Duration::ZERO, weak_q);
        frame_in(&mut strong, &frame, Duration::ZERO);
        let weak_at = weak.next_wake().expect("relay pending");
        let strong_at = strong.next_wake().expect("relay pending");
        assert!(
            weak_at < strong_at,
            "weak {weak_at:?} should fire before strong {strong_at:?}"
        );
    }

    /// The contention weighting: a backlog of queued frames pushes the
    /// relay delay out by one backoff slot per frame.
    #[test]
    fn queued_backlog_defers_the_relay() {
        let frame = {
            let mut a = node(A1);
            start(&mut a);
            a.send_datagram(A3, b"busy".to_vec()).unwrap();
            drain(&mut a, Duration::ZERO).remove(0)
        };
        let mut idle = node(A2);
        let mut busy = node(A2); // same seed → same RNG draw
        start(&mut idle);
        start(&mut busy);
        busy.send_datagram(A3, b"backlog".to_vec()).unwrap();
        frame_in(&mut idle, &frame, Duration::ZERO);
        frame_in(&mut busy, &frame, Duration::ZERO);
        let idle_at = idle.next_wake().expect("relay pending");
        // The busy node's wake is ZERO (its own queued frame); compare
        // the pending relays directly.
        let busy_at = busy.pending.iter().map(|p| p.at).min().unwrap();
        assert_eq!(busy_at - idle_at, FloodConfig::new(A2).backoff_slot);
    }

    /// Typed messages round-trip over the air.
    #[test]
    fn typed_messages_flood_end_to_end() {
        let mut a = node(A1);
        let mut b = node(A2);
        start(&mut a);
        start(&mut b);
        let msg = FloodMessage::Position {
            latitude_i: 413_850_000,
            longitude_i: 21_683_000,
            altitude_m: 42,
        };
        a.send_message(Address::BROADCAST, &msg).unwrap();
        let frames = drain(&mut a, Duration::ZERO);
        frame_in(&mut b, &frames[0], Duration::ZERO);
        match b.take_events().as_slice() {
            [MeshEvent::Broadcast { payload, .. }] => {
                assert_eq!(FloodMessage::decode(payload), Ok(msg));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Multi-seed sweeps host protocol nodes on worker threads.
    #[test]
    fn flood_node_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<FloodNode>();
    }

    #[cfg(feature = "crypto")]
    mod crypto_tests {
        use super::*;

        fn keyed(addr: Address, key: Option<[u8; 16]>) -> FloodNode {
            let mut cfg = FloodConfig::new(addr);
            cfg.region = Region::Unlimited;
            cfg.key = key;
            FloodNode::new(cfg)
        }

        /// Ciphertext rides the wire; holders of the key recover the
        /// plaintext on delivery.
        #[test]
        fn payloads_are_encrypted_on_air_and_decrypted_on_delivery() {
            let key = Some(*b"sixteen byte key");
            let mut a = keyed(A1, key);
            let mut b = keyed(A2, key);
            start(&mut a);
            start(&mut b);
            a.send_datagram(A2, b"secret message".to_vec()).unwrap();
            let frames = drain(&mut a, Duration::ZERO);
            let wire = &frames[0];
            match codec::decode(wire).unwrap() {
                Packet::Data { payload, .. } => {
                    assert_ne!(payload, b"secret message".to_vec());
                }
                other => panic!("unexpected {other:?}"),
            }
            frame_in(&mut b, wire, Duration::ZERO);
            assert_eq!(
                b.take_events(),
                vec![MeshEvent::Datagram {
                    src: A1,
                    payload: b"secret message".to_vec()
                }]
            );
        }

        /// A keyless relay forwards the ciphertext verbatim, and the
        /// keyed destination still decrypts after the extra hop.
        #[test]
        fn keyless_relays_forward_ciphertext_unchanged() {
            let key = Some(*b"sixteen byte key");
            let mut a = keyed(A1, key);
            let mut relay = keyed(A2, None);
            let mut c = keyed(A3, key);
            start(&mut a);
            start(&mut relay);
            start(&mut c);
            a.send_datagram(A3, b"two hops".to_vec()).unwrap();
            let first = drain(&mut a, Duration::ZERO);
            frame_in(&mut relay, &first[0], Duration::ZERO);
            assert!(relay.take_events().is_empty());
            let second = drain(&mut relay, Duration::from_secs(1));
            assert_eq!(second.len(), 1);
            frame_in(&mut c, &second[0], Duration::from_secs(1));
            assert_eq!(
                c.take_events(),
                vec![MeshEvent::Datagram {
                    src: A1,
                    payload: b"two hops".to_vec()
                }]
            );
        }

        /// A receiver with the wrong key delivers garbage, not the
        /// plaintext — and never panics.
        #[test]
        fn wrong_key_yields_garbage_not_plaintext() {
            let mut a = keyed(A1, Some(*b"sixteen byte key"));
            let mut b = keyed(A2, Some(*b"another 16B key!"));
            start(&mut a);
            start(&mut b);
            a.send_datagram(A2, b"secret".to_vec()).unwrap();
            let frames = drain(&mut a, Duration::ZERO);
            frame_in(&mut b, &frames[0], Duration::ZERO);
            match b.take_events().as_slice() {
                [MeshEvent::Datagram { payload, .. }] => {
                    assert_ne!(payload, &b"secret".to_vec());
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
