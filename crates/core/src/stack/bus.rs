//! The intra-stack bus: the shared spine the four layers communicate
//! through.
//!
//! Rather than letting layers call each other directly (which is how
//! the pre-split `MeshNode` monolith grew together), every cross-layer
//! interaction goes through one of the bus's typed channels:
//!
//! * **commands to the MAC** — [`Bus::enqueue`] feeds the prioritised
//!   transmit queue the MAC layer drains;
//! * **events to the app** — [`Bus::emit`] appends to the application
//!   event queue drained by `MeshNode::take_events`;
//! * **shared protocol resources** — the single deterministic RNG
//!   (exactly one per node, so replaying a seed replays every draw),
//!   the stats counters, and the wrapping packet-id counter.
//!
//! The dispatch *order* in which layers get to use the bus is fixed in
//! `stack::MeshNode::process_due`; see the module docs of
//! [`crate::stack`].

use alloc::collections::VecDeque;
use core::time::Duration;

use crate::packet::Packet;
use crate::queue::TxQueue;
use crate::rng::ProtocolRng;
use crate::stack::app::MeshEvent;
use crate::stats::NodeStats;

/// Shared state every layer can reach; see the module docs.
#[derive(Debug)]
pub(crate) struct Bus {
    /// The node's only RNG: all jitter draws (hello schedule, MAC
    /// backoff, reliable-deadline deferral) come from here, in a fixed
    /// order, so a seed fully determines the node's behaviour.
    pub(crate) rng: ProtocolRng,
    /// Protocol counters, incremented by whichever layer observes the
    /// counted fact.
    pub(crate) stats: NodeStats,
    /// Events queued for the application (the app layer's receive side).
    pub(crate) events: VecDeque<MeshEvent>,
    /// Outbound packets awaiting the MAC (the MAC layer's feed).
    pub(crate) txq: TxQueue,
    next_packet_id: u8,
}

impl Bus {
    pub(crate) fn new(seed: u64, tx_queue_capacity: usize) -> Self {
        Bus {
            rng: ProtocolRng::new(seed),
            stats: NodeStats::new(),
            events: VecDeque::new(),
            txq: TxQueue::new(tx_queue_capacity),
            next_packet_id: 0,
        }
    }

    /// The next wire packet id (wrapping).
    pub(crate) fn next_id(&mut self) -> u8 {
        let id = self.next_packet_id;
        self.next_packet_id = self.next_packet_id.wrapping_add(1);
        id
    }

    /// Queues `packet` for transmission; a refusal is counted as
    /// backpressure (sweeps compare the counter to spot congestion
    /// collapse) and reported to the caller.
    pub(crate) fn enqueue(&mut self, packet: Packet) -> bool {
        let accepted = self.txq.push(packet);
        if !accepted {
            self.stats.queue_refusals += 1;
        }
        accepted
    }

    /// Publishes an event to the application queue.
    pub(crate) fn emit(&mut self, event: MeshEvent) {
        self.events.push_back(event);
    }

    /// Random extra delay added to every reliable-transfer deadline:
    /// uniformly 0–50 % of `base`. See
    /// [`crate::reliable::OutboundTransfer::defer_deadline`] for why
    /// this is load-bearing.
    pub(crate) fn ack_jitter(&mut self, base: Duration) -> Duration {
        base.mul_f64(0.5 * self.rng.gen_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Address;
    use alloc::vec;

    fn broadcast(id: u8) -> Packet {
        Packet::Data {
            dst: Address::BROADCAST,
            src: Address::new(1),
            id,
            fwd: crate::packet::Forwarding {
                via: Address::BROADCAST,
                ttl: 1,
            },
            payload: vec![0],
        }
    }

    #[test]
    fn packet_ids_increment_and_wrap() {
        let mut bus = Bus::new(1, 4);
        bus.next_packet_id = 254;
        assert_eq!(bus.next_id(), 254);
        assert_eq!(bus.next_id(), 255);
        assert_eq!(bus.next_id(), 0);
    }

    #[test]
    fn refused_enqueues_count_as_backpressure() {
        let mut bus = Bus::new(1, 1);
        assert!(bus.enqueue(broadcast(0)));
        assert!(!bus.enqueue(broadcast(1)));
        assert!(!bus.enqueue(broadcast(2)));
        assert_eq!(bus.stats.queue_refusals, 2);
        assert_eq!(bus.txq.len(), 1);
    }

    #[test]
    fn ack_jitter_stays_under_half_the_base() {
        let mut bus = Bus::new(7, 1);
        let base = Duration::from_secs(10);
        for _ in 0..100 {
            assert!(bus.ack_jitter(base) < base.mul_f64(0.5));
        }
    }
}
