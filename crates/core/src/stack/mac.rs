//! The MAC layer: channel access and frame emission.
//!
//! Wraps the CAD/backoff/duty-cycle state machine from [`crate::mac`]
//! and owns the only path from the bus's transmit queue to the radio:
//! step 5 of the dispatch order kicks it whenever traffic is pending,
//! it answers the host's CAD verdicts, and on a committed transmission
//! it pops, encodes and hands the frame to the host — via the routing
//! layer's cached hello image (a shared, allocation-free `Arc`) when
//! the frame is the periodic beacon.

use alloc::sync::Arc;
use core::time::Duration;

use lora_phy::region::DutyCycleTracker;

use crate::codec;
use crate::config::MeshConfig;
use crate::driver::RadioIo;
use crate::mac::{Mac, MacAction};
use crate::packet::Packet;
use crate::stack::app::MeshEvent;
use crate::stack::bus::Bus;

/// A protocol layer's cache of pre-encoded wire images.
///
/// The MAC is shared between protocol stacks (`Protocol` abstraction);
/// the only upward coupling it needs is "does the stack already hold
/// the encoded bytes of this packet?". LoRaMesher's routing layer
/// answers for its periodic hello beacon (a shared, allocation-free
/// `Arc`); stacks without pre-encoded frames use [`NoWireCache`].
pub(crate) trait WireCache {
    /// The cached wire image of `packet`, if the layer holds one. The
    /// image must be byte-identical to `codec::encode(packet)`.
    fn wire_for(&mut self, packet: &Packet) -> Option<Arc<[u8]>>;
}

/// The null cache: every frame is encoded at transmit time.
#[derive(Debug, Default)]
pub(crate) struct NoWireCache;

impl WireCache for NoWireCache {
    fn wire_for(&mut self, _packet: &Packet) -> Option<Arc<[u8]>> {
        None
    }
}

/// MAC state; see the module docs.
#[derive(Debug)]
pub(crate) struct MacLayer {
    pub(crate) mac: Mac,
}

impl MacLayer {
    pub(crate) fn new(config: &MeshConfig) -> Self {
        let duty = config
            .region
            .sub_band_for(config.region.default_frequency_hz())
            .map_or_else(DutyCycleTracker::unlimited, |b| {
                DutyCycleTracker::new(b.duty_cycle, Duration::from_secs(3600))
            });
        let mut mac = Mac::new(
            duty,
            config.backoff_slot,
            config.max_backoff_exponent,
            config.max_cad_retries,
        );
        mac.set_max_dwell(
            config
                .region
                .sub_band_for(config.region.default_frequency_hz())
                .and_then(|b| b.max_dwell),
        );
        MacLayer { mac }
    }

    /// Step 5 of the dispatch order: give the MAC a chance to move
    /// queued traffic — a CAD request under CSMA, straight to the air
    /// under the ALOHA ablation.
    pub(crate) fn pump(
        &mut self,
        now: Duration,
        config: &MeshConfig,
        bus: &mut Bus,
        cache: &mut impl WireCache,
        io: &mut RadioIo,
    ) {
        if bus.txq.is_empty() {
            return;
        }
        if config.csma {
            if let MacAction::StartCad = self.mac.kick(now) {
                io.start_cad();
            }
        } else {
            // ALOHA ablation: no carrier sensing, straight to air.
            let airtime = bus
                .txq
                .peek()
                .map(|p| config.modulation.time_on_air(codec::encoded_len(p)));
            if let Some(airtime) = airtime {
                match self.mac.kick_aloha(airtime, now) {
                    MacAction::Transmit => {
                        self.transmit_front(airtime, bus, cache, io);
                    }
                    MacAction::DropFrame => {
                        if let Some(packet) = bus.txq.pop() {
                            bus.emit(MeshEvent::FrameDropped {
                                kind: packet.kind(),
                            });
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    /// The host's CAD verdict: transmit on clear, back off (or drop) on
    /// busy.
    pub(crate) fn on_cad_done(
        &mut self,
        busy: bool,
        now: Duration,
        config: &MeshConfig,
        bus: &mut Bus,
        cache: &mut impl WireCache,
        io: &mut RadioIo,
    ) {
        let Some(front) = bus.txq.peek() else {
            return; // nothing left to send (should not happen)
        };
        let airtime = config.modulation.time_on_air(codec::encoded_len(front));
        match self.mac.on_cad_done(busy, airtime, now, &mut bus.rng) {
            MacAction::Transmit => self.transmit_front(airtime, bus, cache, io),
            MacAction::DropFrame => {
                if let Some(packet) = bus.txq.pop() {
                    bus.emit(MeshEvent::FrameDropped {
                        kind: packet.kind(),
                    });
                }
            }
            MacAction::StartCad => io.start_cad(),
            MacAction::None => {}
        }
    }

    /// Pops and encodes the front of the queue for transmission; the MAC
    /// has already committed to `Transmitting`. Frames the stack holds a
    /// cached wire image for (LoRaMesher's periodic hello) are reused
    /// instead of re-encoded.
    fn transmit_front(
        &mut self,
        airtime: Duration,
        bus: &mut Bus,
        cache: &mut impl WireCache,
        io: &mut RadioIo,
    ) {
        let Some(packet) = bus.txq.pop() else {
            return;
        };
        if let Some(wire) = cache.wire_for(&packet) {
            debug_assert_eq!(
                codec::encode(&packet).ok().as_deref(),
                Some(&*wire),
                "wire cache out of sync with the queued packet"
            );
            bus.stats.frames_sent += 1;
            bus.stats.airtime += airtime;
            io.transmit(wire);
            return;
        }
        match codec::encode(&packet) {
            Ok(frame) => {
                bus.stats.frames_sent += 1;
                bus.stats.airtime += airtime;
                io.transmit(frame);
            }
            Err(_) => {
                // Should be impossible: frames are validated at enqueue
                // time. Recover the MAC and drop.
                self.mac.on_tx_done();
                bus.stats.decode_errors += 1;
            }
        }
    }

    pub(crate) fn on_tx_done(&mut self) {
        self.mac.on_tx_done();
    }

    pub(crate) fn is_ready(&self) -> bool {
        self.mac.is_ready()
    }

    pub(crate) fn next_wake(&self) -> Option<Duration> {
        self.mac.next_wake()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Address;
    use crate::driver::RadioRequest;
    use crate::stack::routing::RoutingLayer;
    use alloc::vec;
    use lora_phy::region::Region;

    const A1: Address = Address::new(1);
    const A2: Address = Address::new(2);

    fn parts() -> (MeshConfig, MacLayer, RoutingLayer, Bus) {
        let config = MeshConfig::builder(A1)
            .region(Region::Unlimited)
            .hello_interval(Duration::from_secs(30))
            .build();
        let mac = MacLayer::new(&config);
        let routing = RoutingLayer::new(&config);
        let bus = Bus::new(config.seed, config.tx_queue_capacity);
        (config, mac, routing, bus)
    }

    /// A committed transmission of the periodic beacon reuses the
    /// routing layer's cached wire image byte for byte.
    #[test]
    fn transmit_front_reuses_cached_hello_wire() {
        let (config, mut mac, mut routing, mut bus) = parts();
        routing.table.heard_from(A2, 0.0, Duration::ZERO);
        routing.emit_hello(Duration::ZERO, &config, &mut bus);
        let wire = routing.hello_wire.clone();
        let mut io = RadioIo::new(Duration::ZERO);
        mac.transmit_front(Duration::from_millis(50), &mut bus, &mut routing, &mut io);
        match io.take_requests().as_slice() {
            [RadioRequest::Transmit(frame)] => {
                assert_eq!(&frame[..], &wire[..]);
                match codec::decode(frame).unwrap() {
                    Packet::Hello { src, .. } => assert_eq!(src, A1),
                    p => panic!("unexpected {p:?}"),
                }
            }
            r => panic!("unexpected {r:?}"),
        }
        assert_eq!(bus.stats.frames_sent, 1);
        assert_eq!(bus.stats.airtime, Duration::from_millis(50));
    }

    /// Two consecutive beacons transmit the same shared allocation once
    /// the host releases the first frame — the zero-copy steady state.
    #[test]
    fn steady_state_beacons_share_one_allocation() {
        let (config, mut mac, mut routing, mut bus) = parts();
        routing.table.heard_from(A2, 0.0, Duration::ZERO);
        let mut beacon = |at: Duration| -> Arc<[u8]> {
            routing.emit_hello(at, &config, &mut bus);
            let mut io = RadioIo::new(at);
            mac.transmit_front(Duration::from_millis(50), &mut bus, &mut routing, &mut io);
            match io.take_requests().pop() {
                Some(RadioRequest::Transmit(frame)) => frame,
                r => panic!("unexpected {r:?}"),
            }
        };
        let first = beacon(Duration::ZERO);
        let first_ptr = first.as_ptr();
        drop(first); // host done with the frame
        let second = beacon(Duration::from_secs(30));
        assert_eq!(second.as_ptr(), first_ptr);
    }

    /// A permanently busy channel exhausts the CAD retries; the frame
    /// is dropped with an app event and the exhaustion counter set.
    #[test]
    fn cad_exhaustion_drops_the_frame_with_an_event() {
        let config = MeshConfig::builder(A1)
            .region(Region::Unlimited)
            .max_cad_retries(2)
            .backoff_slot(Duration::from_millis(10))
            .hello_jitter(false)
            .build();
        let mut mac = MacLayer::new(&config);
        let mut routing = RoutingLayer::new(&config);
        let mut bus = Bus::new(config.seed, config.tx_queue_capacity);
        routing.emit_hello(Duration::from_secs(1), &config, &mut bus);
        let mut now = Duration::from_secs(1);
        let mut io = RadioIo::new(now);
        mac.pump(now, &config, &mut bus, &mut routing, &mut io);
        assert_eq!(io.take_requests(), vec![RadioRequest::StartCad]);
        for _ in 0..4 {
            let mut io = RadioIo::new(now);
            mac.on_cad_done(true, now, &config, &mut bus, &mut routing, &mut io);
            assert!(io.take_requests().is_empty());
            if bus.txq.is_empty() {
                break; // dropped after exhausting CAD retries
            }
            if let Some(wake) = mac.next_wake() {
                now = now.max(wake);
            }
            let mut io = RadioIo::new(now);
            mac.pump(now, &config, &mut bus, &mut routing, &mut io);
            assert_eq!(io.take_requests(), vec![RadioRequest::StartCad]);
        }
        assert!(bus.txq.is_empty());
        assert_eq!(mac.mac.cad_drops, 1);
        assert!(bus.events.iter().any(|e| matches!(
            e,
            MeshEvent::FrameDropped {
                kind: crate::packet::PacketKind::Hello
            }
        )));
    }

    /// Under the ALOHA ablation a pump goes straight to the air — no
    /// CAD request ever appears.
    #[test]
    fn aloha_pump_transmits_without_cad() {
        let config = MeshConfig::builder(A1)
            .region(Region::Unlimited)
            .csma(false)
            .hello_jitter(false)
            .build();
        let mut mac = MacLayer::new(&config);
        let mut routing = RoutingLayer::new(&config);
        let mut bus = Bus::new(config.seed, config.tx_queue_capacity);
        routing.emit_hello(Duration::ZERO, &config, &mut bus);
        let mut io = RadioIo::new(Duration::ZERO);
        mac.pump(Duration::ZERO, &config, &mut bus, &mut routing, &mut io);
        assert!(matches!(
            io.take_requests().as_slice(),
            [RadioRequest::Transmit(_)]
        ));
    }
}
