//! The layered protocol stack: [`MeshNode`] as a composition of four
//! layers over a shared bus.
//!
//! The pre-split `node.rs` monolith interleaved channel access, the
//! routing daemon, reliable transfers and the application API in one
//! 1 800-line state machine. The stack keeps the exact same observable
//! behaviour (pinned by `tests/stack_refactor_diff.rs`) but factors it
//! into:
//!
//! * [`mod@app`] — the application surface: send validation and the
//!   [`MeshEvent`] receive queue.
//! * `transport` — reliable SYNC/fragment/ACK/LOST transfers.
//! * `routing` — the hello daemon, the distance-vector table (generic
//!   over [`crate::routing::RouteMetric`]) and unicast forwarding.
//! * `mac` — CAD/backoff/duty-cycle channel access and frame emission.
//!
//! Layers never call each other directly; they exchange packets and
//! events over the `bus` (the transmit queue feeding the MAC, the event
//! queue feeding the app, and the node's single deterministic RNG).
//!
//! # Dispatch order
//!
//! Determinism requires one fixed order in which the layers act on a
//! timer tick. `MeshNode::process_due` runs, in this order and nothing
//! else:
//!
//! 1. **routing** — route expiry (purge + `RoutesExpired`);
//! 2. **routing** — the periodic hello broadcast, if due;
//! 3. **transport** — outbound retransmission deadlines;
//! 4. **transport** — stalled-inbound LOST nudges, then inbound
//!    reassembly expiry;
//! 5. **mac** — one chance to move queued traffic to the radio.
//!
//! Host callbacks dispatch the same way every time: `on_frame` goes to
//! routing (hellos), the app (data addressed here or broadcast), the
//! transport (Sync/Frag/Ack/Lost addressed here) or routing again
//! (forwarding); `on_cad_done`/`on_tx_done` go to the MAC.

pub mod app;
pub(crate) mod bus;
pub(crate) mod mac;
mod routing;
mod transport;

use alloc::vec::Vec;
use core::time::Duration;

use lora_phy::link::SignalQuality;

use crate::addr::Address;
use crate::codec;
use crate::config::MeshConfig;
use crate::driver::{NodeProtocol, RadioIo};
use crate::error::SendError;
use crate::packet::Packet;
use crate::reliable::TransferPhase;
use crate::routing::RoutingTable;
use crate::stats::NodeStats;

pub use app::MeshEvent;
use bus::Bus;
use mac::MacLayer;
use routing::RoutingLayer;
use transport::TransportLayer;

/// A LoRaMesher node.
///
/// See the crate-level docs for the protocol, the [module docs](self)
/// for the layer architecture, and the [`crate::driver`] module for how
/// to host one.
#[derive(Debug)]
pub struct MeshNode {
    config: MeshConfig,
    bus: Bus,
    mac: MacLayer,
    routing: RoutingLayer,
    transport: TransportLayer,
    started: bool,
}

impl MeshNode {
    /// Creates a node from its configuration.
    #[must_use]
    pub fn new(config: MeshConfig) -> Self {
        MeshNode {
            bus: Bus::new(config.seed, config.tx_queue_capacity),
            mac: MacLayer::new(&config),
            routing: RoutingLayer::new(&config),
            transport: TransportLayer::new(),
            started: false,
            config,
        }
    }

    /// This node's address.
    #[must_use]
    pub fn address(&self) -> Address {
        self.config.address
    }

    /// The node's configuration.
    #[must_use]
    pub fn config(&self) -> &MeshConfig {
        &self.config
    }

    /// Read access to the routing table.
    #[must_use]
    pub fn routing_table(&self) -> &RoutingTable {
        &self.routing.table
    }

    /// A snapshot of the node's protocol statistics.
    #[must_use]
    pub fn stats(&self) -> NodeStats {
        let mut s = self.bus.stats;
        s.duty_cycle_deferrals = self.mac.mac.duty_deferrals;
        s.cad_exhausted = self.mac.mac.cad_drops;
        // Include retransmissions of transfers still in flight.
        s.reliable_retransmits += self.transport.in_flight_retransmits();
        s
    }

    /// Drains the pending application events.
    pub fn take_events(&mut self) -> Vec<MeshEvent> {
        self.bus.events.drain(..).collect()
    }

    /// Outbound frames currently queued (diagnostics).
    #[must_use]
    pub fn tx_queue_len(&self) -> usize {
        self.bus.txq.len()
    }

    /// Progress of the active outbound transfers: destination, sequence
    /// id and phase (diagnostics).
    #[must_use]
    pub fn outbound_transfers(&self) -> Vec<(Address, u8, TransferPhase)> {
        self.transport.outbound_transfers()
    }

    /// Progress of the active inbound transfers: source, sequence id and
    /// fragments received out of the announced total (diagnostics).
    #[must_use]
    pub fn inbound_transfers(&self) -> Vec<(Address, u8, usize, usize)> {
        self.transport.inbound_transfers()
    }

    /// Submits a single-frame datagram to `dst` (or broadcast).
    ///
    /// Returns the packet id on success.
    ///
    /// ```
    /// use loramesher::{Address, MeshConfig, MeshNode, SendError};
    /// use std::time::Duration;
    ///
    /// let mut node = MeshNode::new(MeshConfig::builder(Address::new(1)).build());
    /// // Without a route the submission is refused...
    /// assert_eq!(
    ///     node.send_datagram(Address::new(2), b"hi".to_vec(), Duration::ZERO),
    ///     Err(SendError::NoRoute(Address::new(2)))
    /// );
    /// // ...but broadcasts never need one.
    /// assert!(node
    ///     .send_datagram(Address::BROADCAST, b"hi".to_vec(), Duration::ZERO)
    ///     .is_ok());
    /// ```
    ///
    /// # Errors
    ///
    /// * [`SendError::EmptyPayload`] — nothing to send.
    /// * [`SendError::PayloadTooLarge`] — use [`MeshNode::send_reliable`].
    /// * [`SendError::NoRoute`] — the destination is not in the routing
    ///   table yet.
    /// * [`SendError::QueueFull`] — the transmit queue refused the frame.
    pub fn send_datagram(
        &mut self,
        dst: Address,
        payload: Vec<u8>,
        _now: Duration,
    ) -> Result<u8, SendError> {
        app::send_datagram(&self.config, &self.routing, &mut self.bus, dst, payload)
    }

    /// Starts a reliable transfer of an arbitrarily large payload.
    ///
    /// Returns the transfer's sequence id; completion is reported as
    /// [`MeshEvent::ReliableDelivered`] or [`MeshEvent::ReliableFailed`].
    ///
    /// # Errors
    ///
    /// * [`SendError::EmptyPayload`] — nothing to send.
    /// * [`SendError::BroadcastUnsupported`] — reliable transfers are
    ///   unicast only.
    /// * [`SendError::NoRoute`] — the destination is unknown.
    /// * [`SendError::TransferInProgress`] — one transfer per destination
    ///   at a time.
    /// * [`SendError::QueueFull`] — the transmit queue refused the Sync.
    pub fn send_reliable(
        &mut self,
        dst: Address,
        payload: Vec<u8>,
        now: Duration,
    ) -> Result<u8, SendError> {
        self.transport.send_reliable(
            dst,
            payload,
            now,
            &self.config,
            &mut self.bus,
            &self.routing,
        )
    }

    /// Runs every deadline that has passed, in the fixed dispatch order
    /// of the [module docs](self); called from `on_timer`.
    fn process_due(&mut self, now: Duration, io: &mut RadioIo) {
        // 1. Route expiry.
        self.routing.expire(now, &self.config, &mut self.bus);
        // 2. Routing broadcast.
        if now >= self.routing.next_hello {
            self.routing.emit_hello(now, &self.config, &mut self.bus);
        }
        // 3 + 4. Transport deadlines.
        self.transport
            .process_due(now, &self.config, &mut self.bus, &self.routing);
        // 5. Give the MAC a chance to move traffic.
        self.mac
            .pump(now, &self.config, &mut self.bus, &mut self.routing, io);
    }
}

impl NodeProtocol for MeshNode {
    fn on_start(&mut self, io: &mut RadioIo) {
        self.started = true;
        self.routing
            .schedule_first_hello(io.now(), &self.config, &mut self.bus);
    }

    fn on_timer(&mut self, io: &mut RadioIo) {
        self.process_due(io.now(), io);
    }

    fn on_frame(&mut self, frame: &[u8], quality: SignalQuality, io: &mut RadioIo) {
        let now = io.now();
        let packet = match codec::decode(frame) {
            Ok(p) => p,
            Err(_) => {
                self.bus.stats.decode_errors += 1;
                return;
            }
        };
        if packet.src() == self.config.address {
            // We cannot hear ourselves (half-duplex): someone else is
            // using our address.
            self.bus.stats.address_conflicts += 1;
            self.bus.emit(MeshEvent::AddressConflict {
                kind: packet.kind(),
            });
            return;
        }
        match &packet {
            Packet::Hello {
                src, role, entries, ..
            } => {
                self.routing
                    .on_hello(self.config.address, *src, *role, entries, quality.snr, now);
                self.bus.stats.hellos_received += 1;
            }
            _ => {
                let dst = packet.dst();
                // Every non-Hello kind decodes with a forwarding
                // extension; treat its absence as a decode error rather
                // than a panic on over-the-air input.
                let Some(fwd) = packet.forwarding() else {
                    self.bus.stats.decode_errors += 1;
                    return;
                };
                if dst == self.config.address {
                    match packet {
                        Packet::Data { src, payload, .. } => {
                            app::deliver_datagram(&mut self.bus, src, payload);
                        }
                        p => self.transport.consume(
                            p,
                            now,
                            &self.config,
                            &mut self.bus,
                            &self.routing,
                        ),
                    }
                } else if dst.is_broadcast() {
                    if let Packet::Data { src, payload, .. } = packet {
                        app::deliver_broadcast(&mut self.bus, src, payload);
                    }
                } else if fwd.via == self.config.address {
                    self.routing.forward(packet, &mut self.bus);
                }
                // Otherwise: overheard traffic for someone else; ignore.
            }
        }
    }

    fn on_tx_done(&mut self, _io: &mut RadioIo) {
        self.mac.on_tx_done();
    }

    fn on_cad_done(&mut self, busy: bool, io: &mut RadioIo) {
        self.mac.on_cad_done(
            busy,
            io.now(),
            &self.config,
            &mut self.bus,
            &mut self.routing,
            io,
        );
    }

    fn next_wake(&self) -> Option<Duration> {
        if !self.started {
            return None;
        }
        let mut wake: Option<Duration> = Some(self.routing.next_hello);
        let mut consider = |t: Option<Duration>| {
            if let Some(t) = t {
                wake = Some(wake.map_or(t, |w| w.min(t)));
            }
        };
        if self.mac.is_ready() && !self.bus.txq.is_empty() {
            consider(Some(Duration::ZERO)); // immediate
        }
        consider(self.mac.next_wake());
        consider(self.routing.table.next_expiry(self.config.route_timeout));
        consider(self.transport.next_wake(&self.config));
        wake
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lora_phy::region::Region;

    /// Multi-seed sweeps host protocol nodes on worker threads, so the
    /// node must stay Send. Compile-time check.
    #[test]
    fn mesh_node_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<MeshNode>();
    }

    #[test]
    fn stats_snapshot_includes_mac_counters() {
        let n = MeshNode::new(
            MeshConfig::builder(Address::new(1))
                .region(Region::Unlimited)
                .build(),
        );
        let s = n.stats();
        assert_eq!(s.duty_cycle_deferrals, 0);
        assert_eq!(s.cad_exhausted, 0);
    }

    /// An unstarted node never asks to be woken: hosts key their timer
    /// programming off this.
    #[test]
    fn unstarted_node_reports_no_wake() {
        let mut n = MeshNode::new(
            MeshConfig::builder(Address::new(1))
                .region(Region::Unlimited)
                .build(),
        );
        assert_eq!(n.next_wake(), None);
        let mut io = RadioIo::new(Duration::ZERO);
        n.on_start(&mut io);
        assert!(io.take_requests().is_empty());
        assert!(n.next_wake().is_some());
    }
}
