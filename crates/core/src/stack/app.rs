//! The application layer: the stack's top surface.
//!
//! Sending is validated here — payload bounds, route availability,
//! queue backpressure — before anything touches the lower layers;
//! receiving is the [`MeshEvent`] queue on the bus, filled by whichever
//! layer completes a delivery (routing for datagrams, transport for
//! reliable payloads) and drained by `MeshNode::take_events`.

use alloc::vec::Vec;

use crate::addr::Address;
use crate::config::MeshConfig;
use crate::error::SendError;
use crate::packet::{Forwarding, Packet, PacketKind};
use crate::stack::bus::Bus;
use crate::stack::routing::RoutingLayer;

/// Something the protocol reports to the application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MeshEvent {
    /// A unicast datagram addressed to this node arrived.
    Datagram {
        /// Originating node.
        src: Address,
        /// Application payload.
        payload: Vec<u8>,
    },
    /// A broadcast datagram arrived.
    Broadcast {
        /// Originating node.
        src: Address,
        /// Application payload.
        payload: Vec<u8>,
    },
    /// A reliable transfer addressed to this node completed.
    ReliableReceived {
        /// Originating node.
        src: Address,
        /// The reassembled payload.
        payload: Vec<u8>,
    },
    /// A reliable transfer this node sent was fully acknowledged.
    ReliableDelivered {
        /// The destination.
        dst: Address,
        /// The transfer's sequence id.
        seq: u8,
    },
    /// A reliable transfer this node sent was aborted.
    ReliableFailed {
        /// The destination.
        dst: Address,
        /// The transfer's sequence id.
        seq: u8,
    },
    /// Routes timed out and were removed.
    RoutesExpired {
        /// The destinations that became unreachable.
        destinations: Vec<Address>,
    },
    /// An outbound frame was dropped by the MAC (CAD retries exhausted or
    /// frame larger than the duty budget).
    FrameDropped {
        /// The dropped packet's kind.
        kind: PacketKind,
    },
    /// A half-finished inbound transfer was abandoned.
    InboundTransferExpired {
        /// The transfer's originator.
        src: Address,
        /// The transfer's sequence id.
        seq: u8,
    },
    /// A frame originated by *our own address* was received. A
    /// half-duplex radio never hears its own transmissions, so this
    /// means another node in range uses the same address — a
    /// misconfiguration the application must resolve.
    AddressConflict {
        /// The kind of the conflicting frame.
        kind: PacketKind,
    },
}

/// Validates and queues a single-frame datagram; see
/// `MeshNode::send_datagram` for the public contract.
pub(crate) fn send_datagram(
    config: &MeshConfig,
    routing: &RoutingLayer,
    bus: &mut Bus,
    dst: Address,
    payload: Vec<u8>,
) -> Result<u8, SendError> {
    if payload.is_empty() {
        return Err(SendError::EmptyPayload);
    }
    if payload.len() > config.max_datagram_payload {
        return Err(SendError::PayloadTooLarge {
            len: payload.len(),
            max: config.max_datagram_payload,
        });
    }
    let via = routing.resolve_via(dst)?;
    let id = bus.next_id();
    let packet = Packet::Data {
        dst,
        src: config.address,
        id,
        fwd: Forwarding {
            via,
            ttl: config.max_ttl,
        },
        payload,
    };
    if !bus.enqueue(packet) {
        return Err(SendError::QueueFull);
    }
    bus.stats.data_originated += 1;
    Ok(id)
}

/// Hands a unicast datagram payload to the application.
pub(crate) fn deliver_datagram(bus: &mut Bus, src: Address, payload: Vec<u8>) {
    bus.stats.data_delivered += 1;
    bus.emit(MeshEvent::Datagram { src, payload });
}

/// Hands a broadcast datagram payload to the application.
pub(crate) fn deliver_broadcast(bus: &mut Bus, src: Address, payload: Vec<u8>) {
    bus.stats.data_delivered += 1;
    bus.emit(MeshEvent::Broadcast { src, payload });
}

#[cfg(test)]
mod tests {
    use super::*;
    use alloc::vec;

    const ME: Address = Address::new(1);
    const PEER: Address = Address::new(2);

    fn parts(capacity: usize) -> (MeshConfig, RoutingLayer, Bus) {
        let config = MeshConfig::builder(ME).tx_queue_capacity(capacity).build();
        let routing = RoutingLayer::new(&config);
        let bus = Bus::new(config.seed, config.tx_queue_capacity);
        (config, routing, bus)
    }

    /// The app layer refuses bad submissions before anything reaches
    /// the lower layers: no queue traffic, no stats movement.
    #[test]
    fn validation_rejects_before_the_bus_is_touched() {
        let (config, routing, mut bus) = parts(4);
        assert_eq!(
            send_datagram(&config, &routing, &mut bus, PEER, vec![]),
            Err(SendError::EmptyPayload)
        );
        assert!(matches!(
            send_datagram(&config, &routing, &mut bus, PEER, vec![0; 4000]),
            Err(SendError::PayloadTooLarge { .. })
        ));
        assert_eq!(
            send_datagram(&config, &routing, &mut bus, PEER, vec![1]),
            Err(SendError::NoRoute(PEER))
        );
        assert!(bus.txq.is_empty());
        assert_eq!(bus.stats.data_originated, 0);
    }

    /// Broadcasts need no route and flow through the bus onto the
    /// transmit queue.
    #[test]
    fn broadcast_datagram_is_queued_through_the_bus() {
        let (config, routing, mut bus) = parts(4);
        let id = send_datagram(&config, &routing, &mut bus, Address::BROADCAST, vec![7])
            .expect("broadcasts need no route");
        assert_eq!(id, 0);
        assert_eq!(bus.txq.len(), 1);
        assert_eq!(bus.stats.data_originated, 1);
    }

    /// A full queue surfaces as `QueueFull` *and* as the backpressure
    /// counter the sweeps monitor.
    #[test]
    fn backpressure_is_reported_and_counted() {
        let (config, routing, mut bus) = parts(1);
        assert!(send_datagram(&config, &routing, &mut bus, Address::BROADCAST, vec![1]).is_ok());
        assert_eq!(
            send_datagram(&config, &routing, &mut bus, Address::BROADCAST, vec![2]),
            Err(SendError::QueueFull)
        );
        assert_eq!(bus.stats.queue_refusals, 1);
        assert_eq!(bus.stats.data_originated, 1);
    }

    /// Deliveries count and queue in arrival order.
    #[test]
    fn deliveries_reach_the_event_queue_in_order() {
        let (_, _, mut bus) = parts(1);
        deliver_datagram(&mut bus, PEER, vec![1]);
        deliver_broadcast(&mut bus, PEER, vec![2]);
        assert_eq!(bus.stats.data_delivered, 2);
        let events: Vec<MeshEvent> = bus.events.drain(..).collect();
        assert_eq!(
            events,
            vec![
                MeshEvent::Datagram {
                    src: PEER,
                    payload: vec![1]
                },
                MeshEvent::Broadcast {
                    src: PEER,
                    payload: vec![2]
                },
            ]
        );
    }
}
