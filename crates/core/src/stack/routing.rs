//! The routing layer: the hello daemon and the distance-vector table.
//!
//! Owns the [`RoutingTable`] (generic over [`crate::routing::RouteMetric`];
//! hop count is the default policy), the hello schedule, and the hello
//! wire cache: while the table's hello-visible content is unchanged,
//! consecutive hellos reuse one encoded image — and one shared
//! `Arc<[u8]>` — with only the packet-id byte rewritten, so the
//! steady-state beacon costs neither a re-serialisation nor a frame
//! copy.
//!
//! Unicast packets addressed *through* this node come back here too:
//! [`RoutingLayer::forward`] rewrites the `via`/TTL pair and re-queues
//! the packet over the bus.

use alloc::sync::Arc;
use alloc::vec::Vec;
use core::time::Duration;

use crate::addr::Address;
use crate::codec;
use crate::config::MeshConfig;
use crate::error::SendError;
use crate::packet::{Packet, RouteEntry};
use crate::routing::RoutingTable;
use crate::stack::app::MeshEvent;
use crate::stack::bus::Bus;
use crate::stack::mac::WireCache;

/// Routing state; see the module docs.
#[derive(Debug)]
pub(crate) struct RoutingLayer {
    pub(crate) table: RoutingTable,
    /// When the next hello broadcast is due.
    pub(crate) next_hello: Duration,
    /// Hello frame cache: while the routing table's
    /// [`RoutingTable::version`] matches `hello_version`, consecutive
    /// hellos carry identical entries, so the wire image is reused with
    /// only the packet-id byte patched instead of re-serialising the
    /// whole table every beacon interval.
    hello_entries: Vec<RouteEntry>,
    pub(crate) hello_wire: Vec<u8>,
    /// The shared frame handed to the host; refreshed from
    /// `hello_wire` in place while uniquely owned, so steady-state
    /// beacons transmit without allocating.
    hello_arc: Option<Arc<[u8]>>,
    pub(crate) hello_version: Option<u64>,
    hello_wire_id: Option<u8>,
}

impl RoutingLayer {
    pub(crate) fn new(config: &MeshConfig) -> Self {
        RoutingLayer {
            table: RoutingTable::with_policy(config.routing_policy),
            next_hello: Duration::ZERO,
            hello_entries: Vec::new(),
            hello_wire: Vec::new(),
            hello_arc: None,
            hello_version: None,
            hello_wire_id: None,
        }
    }

    /// The next hop for `dst`, or the broadcast pseudo-address.
    pub(crate) fn resolve_via(&self, dst: Address) -> Result<Address, SendError> {
        if dst.is_broadcast() {
            Ok(Address::BROADCAST)
        } else {
            self.table.next_hop(dst).ok_or(SendError::NoRoute(dst))
        }
    }

    /// Applies a received hello to the table (dispatch from `on_frame`;
    /// the caller counts it in the bus stats).
    pub(crate) fn on_hello(
        &mut self,
        me: Address,
        src: Address,
        role: u8,
        entries: &[RouteEntry],
        snr: f64,
        now: Duration,
    ) {
        self.table.apply_hello(me, src, role, entries, snr, now);
    }

    /// Step 1 of the dispatch order: purge routes past the timeout and
    /// tell the application which destinations went unreachable.
    pub(crate) fn expire(&mut self, now: Duration, config: &MeshConfig, bus: &mut Bus) {
        if let Some(expiry) = self.table.next_expiry(config.route_timeout) {
            if expiry <= now {
                let purged = self.table.purge(now, config.route_timeout);
                if !purged.is_empty() {
                    bus.emit(MeshEvent::RoutesExpired {
                        destinations: purged,
                    });
                }
            }
        }
    }

    fn schedule_next_hello(&mut self, now: Duration, config: &MeshConfig, bus: &mut Bus) {
        // ±10 % jitter desynchronises neighbours that booted together.
        let jitter = if config.hello_jitter {
            0.9 + 0.2 * bus.rng.gen_f64()
        } else {
            1.0
        };
        self.next_hello = now + config.hello_interval.mul_f64(jitter);
    }

    /// Boot-time hello schedule: first beacon 1–5 s after start (jittered
    /// so co-booted nodes do not collide, unless the ablation is active).
    pub(crate) fn schedule_first_hello(
        &mut self,
        now: Duration,
        config: &MeshConfig,
        bus: &mut Bus,
    ) {
        let jitter = if config.hello_jitter {
            Duration::from_millis(bus.rng.gen_range(4000))
        } else {
            Duration::ZERO
        };
        self.next_hello = now + Duration::from_secs(1) + jitter;
    }

    /// Step 2 of the dispatch order: queue the periodic routing
    /// broadcast and schedule the next one.
    pub(crate) fn emit_hello(&mut self, now: Duration, config: &MeshConfig, bus: &mut Bus) {
        let id = bus.next_id();
        let hello = if self.hello_version == Some(self.table.version()) {
            // The table's Hello-visible content is unchanged since the
            // cached encoding: only the packet id differs, so patch that
            // single byte instead of re-serialising the whole table.
            if let Some(b) = self.hello_wire.get_mut(codec::HEADER_ID_OFFSET) {
                *b = id;
            }
            self.hello_wire_id = Some(id);
            Packet::Hello {
                src: config.address,
                id,
                role: config.role,
                entries: self.hello_entries.clone(),
            }
        } else {
            let mut entries = self.table.as_entries();
            entries.truncate(codec::MAX_HELLO_ENTRIES);
            let hello = Packet::Hello {
                src: config.address,
                id,
                role: config.role,
                entries,
            };
            match codec::encode_into(&hello, &mut self.hello_wire) {
                Ok(()) => {
                    self.hello_version = Some(self.table.version());
                    self.hello_wire_id = Some(id);
                    if let Packet::Hello { entries, .. } = &hello {
                        self.hello_entries.clone_from(entries);
                    }
                }
                Err(_) => {
                    // Unencodable hello (cannot happen with the entry cap,
                    // but stay safe): poison the cache.
                    self.hello_version = None;
                    self.hello_wire_id = None;
                    self.hello_wire.clear();
                }
            }
            hello
        };
        if bus.enqueue(hello) {
            bus.stats.hellos_sent += 1;
        }
        self.schedule_next_hello(now, config, bus);
    }

    /// The cached hello frame for packet id `id`, as the shared bytes
    /// the host transmits. Refreshes the `Arc` from `hello_wire` —
    /// rewriting it in place when this layer holds the only reference
    /// (the steady state once the host has released the previous
    /// beacon), reallocating otherwise.
    pub(crate) fn cached_wire(&mut self, id: u8) -> Option<Arc<[u8]>> {
        if self.hello_wire_id != Some(id) || self.hello_wire.is_empty() {
            return None;
        }
        let arc = match self.hello_arc.take() {
            Some(mut arc) if arc.len() == self.hello_wire.len() => {
                if let Some(bytes) = Arc::get_mut(&mut arc) {
                    bytes.copy_from_slice(&self.hello_wire);
                    arc
                } else {
                    Arc::from(self.hello_wire.as_slice())
                }
            }
            _ => Arc::from(self.hello_wire.as_slice()),
        };
        self.hello_arc = Some(arc.clone());
        Some(arc)
    }

    /// Forwards a unicast packet addressed through this node: TTL check,
    /// `via` rewrite, re-queue.
    pub(crate) fn forward(&mut self, mut packet: Packet, bus: &mut Bus) {
        let dst = packet.dst();
        let Some(next) = self.table.next_hop(dst) else {
            bus.stats.no_route_drops += 1;
            return;
        };
        // Only unicast packets reach here; a Hello without forwarding
        // would be a caller bug — drop it rather than panic.
        let Some(fwd) = packet.forwarding_mut() else {
            debug_assert!(false, "only unicast packets are forwarded");
            return;
        };
        if fwd.ttl <= 1 {
            bus.stats.ttl_expired += 1;
            return;
        }
        fwd.ttl -= 1;
        fwd.via = next;
        if bus.enqueue(packet) {
            bus.stats.forwarded += 1;
        }
    }
}

/// LoRaMesher's wire cache: only the periodic hello beacon carries a
/// pre-encoded image (see [`RoutingLayer::cached_wire`]).
impl WireCache for RoutingLayer {
    fn wire_for(&mut self, packet: &Packet) -> Option<Arc<[u8]>> {
        match packet {
            Packet::Hello { id, .. } => self.cached_wire(*id),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Forwarding;
    use alloc::vec;

    const A1: Address = Address::new(1);
    const A2: Address = Address::new(2);
    const A3: Address = Address::new(3);

    fn parts() -> (MeshConfig, RoutingLayer, Bus) {
        let config = MeshConfig::builder(A1)
            .hello_interval(Duration::from_secs(30))
            .build();
        let routing = RoutingLayer::new(&config);
        let bus = Bus::new(config.seed, config.tx_queue_capacity);
        (config, routing, bus)
    }

    #[test]
    fn hello_wire_cache_patches_id_until_table_changes() {
        let (config, mut r, mut bus) = parts();
        r.table.heard_from(A2, 0.0, Duration::ZERO);
        r.emit_hello(Duration::ZERO, &config, &mut bus);
        let first_wire = r.hello_wire.clone();
        let v = r.hello_version;
        assert!(v.is_some());
        // Unchanged table: the cached wire image is reused with only the
        // packet-id byte rewritten.
        r.emit_hello(Duration::from_secs(30), &config, &mut bus);
        assert_eq!(r.hello_version, v, "unchanged table must not re-encode");
        assert_eq!(first_wire.len(), r.hello_wire.len());
        let diff: Vec<usize> = first_wire
            .iter()
            .zip(r.hello_wire.iter())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(diff, vec![codec::HEADER_ID_OFFSET]);
        // A routing change invalidates the cache and re-encodes.
        r.table.heard_from(A3, 0.0, Duration::from_secs(31));
        r.emit_hello(Duration::from_secs(60), &config, &mut bus);
        assert_ne!(r.hello_version, v);
        match codec::decode(&r.hello_wire).unwrap() {
            Packet::Hello { entries, .. } => assert_eq!(entries.len(), 2),
            p => panic!("unexpected {p:?}"),
        }
        assert_eq!(bus.stats.hellos_sent, 3);
    }

    /// Steady state: the shared frame is rewritten in place, not
    /// reallocated — consecutive beacons hand out the *same* `Arc`.
    #[test]
    fn cached_wire_reuses_the_shared_allocation() {
        let (config, mut r, mut bus) = parts();
        r.table.heard_from(A2, 0.0, Duration::ZERO);
        r.emit_hello(Duration::ZERO, &config, &mut bus);
        let id1 = match bus.txq.pop() {
            Some(Packet::Hello { id, .. }) => id,
            p => panic!("unexpected {p:?}"),
        };
        let first = r.cached_wire(id1).expect("cache hit");
        assert_eq!(&first[..], &r.hello_wire[..]);
        let first_ptr = first.as_ptr();
        drop(first); // the host released the frame: refcount back to 1
        r.emit_hello(Duration::from_secs(30), &config, &mut bus);
        let id2 = match bus.txq.pop() {
            Some(Packet::Hello { id, .. }) => id,
            p => panic!("unexpected {p:?}"),
        };
        assert_ne!(id1, id2);
        let second = r.cached_wire(id2).expect("cache hit");
        assert_eq!(
            second.as_ptr(),
            first_ptr,
            "steady state must not reallocate"
        );
        assert_eq!(&second[..], &r.hello_wire[..]);
        // A stale id misses the cache entirely.
        assert!(r.cached_wire(id2.wrapping_add(1)).is_none());
    }

    /// While the host still holds the previous beacon, the cache must
    /// not mutate it — it hands out a fresh allocation instead.
    #[test]
    fn cached_wire_never_mutates_a_frame_the_host_still_holds() {
        let (config, mut r, mut bus) = parts();
        r.table.heard_from(A2, 0.0, Duration::ZERO);
        r.emit_hello(Duration::ZERO, &config, &mut bus);
        let Some(Packet::Hello { id: id1, .. }) = bus.txq.pop() else {
            panic!("expected hello");
        };
        let held = r.cached_wire(id1).expect("cache hit");
        let held_bytes: Vec<u8> = held.to_vec();
        r.emit_hello(Duration::from_secs(30), &config, &mut bus);
        let Some(Packet::Hello { id: id2, .. }) = bus.txq.pop() else {
            panic!("expected hello");
        };
        let fresh = r.cached_wire(id2).expect("cache hit");
        assert_eq!(&held[..], &held_bytes[..], "held frame was mutated");
        assert_ne!(fresh.as_ptr(), held.as_ptr());
    }

    #[test]
    fn forward_rewrites_via_and_decrements_ttl() {
        let (_config, mut r, mut bus) = parts();
        r.table.heard_from(A3, 0.0, Duration::ZERO);
        r.forward(
            Packet::Data {
                dst: A3,
                src: A2,
                id: 9,
                fwd: Forwarding { via: A1, ttl: 5 },
                payload: vec![1],
            },
            &mut bus,
        );
        assert_eq!(bus.stats.forwarded, 1);
        match bus.txq.pop() {
            Some(Packet::Data { fwd, .. }) => {
                assert_eq!(fwd.via, A3);
                assert_eq!(fwd.ttl, 4);
            }
            p => panic!("unexpected {p:?}"),
        }
    }

    #[test]
    fn forward_drops_on_ttl_expiry_and_missing_route() {
        let (_config, mut r, mut bus) = parts();
        let packet = |ttl| Packet::Data {
            dst: A3,
            src: A2,
            id: 0,
            fwd: Forwarding { via: A1, ttl },
            payload: vec![1],
        };
        r.forward(packet(5), &mut bus);
        assert_eq!(bus.stats.no_route_drops, 1);
        r.table.heard_from(A3, 0.0, Duration::ZERO);
        r.forward(packet(1), &mut bus);
        assert_eq!(bus.stats.ttl_expired, 1);
        assert!(bus.txq.is_empty());
    }

    #[test]
    fn expire_purges_and_notifies_the_app() {
        let config = MeshConfig::builder(A1)
            .route_timeout(Duration::from_secs(60))
            .build();
        let mut r = RoutingLayer::new(&config);
        let mut bus = Bus::new(1, 4);
        r.table.heard_from(A2, 0.0, Duration::from_secs(1));
        r.expire(Duration::from_secs(2), &config, &mut bus);
        assert!(r.table.next_hop(A2).is_some(), "fresh route must survive");
        r.expire(Duration::from_secs(61), &config, &mut bus);
        assert!(r.table.next_hop(A2).is_none());
        assert_eq!(
            bus.events.pop_front(),
            Some(MeshEvent::RoutesExpired {
                destinations: vec![A2]
            })
        );
    }
}
