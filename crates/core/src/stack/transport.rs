//! The transport layer: reliable large-payload transfers.
//!
//! Owns the per-destination outbound and per-`(source, seq)` inbound
//! transfer state machines from [`crate::reliable`] and turns their
//! actions into wire packets: SYNC and fragment emissions on the send
//! side, ACK and LOST control packets on the receive side. All packets
//! leave through the bus's transmit queue (routed via the routing
//! layer's next-hop lookup) and all completions are reported through
//! the bus's event queue.

use alloc::collections::BTreeMap;
use alloc::vec::Vec;
use core::time::Duration;

use crate::addr::Address;
use crate::codec::MAX_FRAG_PAYLOAD;
use crate::config::MeshConfig;
use crate::error::SendError;
use crate::packet::{Forwarding, Packet, SYNC_ACK_INDEX};
use crate::reliable::{
    InboundTransfer, OutboundTransfer, ReceiverAction, SenderAction, TransferPhase,
};
use crate::stack::app::MeshEvent;
use crate::stack::bus::Bus;
use crate::stack::routing::RoutingLayer;

/// Control-packet kinds the receiver side sends back.
enum ControlKind {
    Ack(u16),
    Lost(Vec<u16>),
}

/// Transport state; see the module docs.
#[derive(Debug)]
pub(crate) struct TransportLayer {
    outbound: BTreeMap<Address, OutboundTransfer>,
    inbound: BTreeMap<(Address, u8), InboundTransfer>,
    next_seq: u8,
}

impl TransportLayer {
    pub(crate) fn new() -> Self {
        TransportLayer {
            outbound: BTreeMap::new(),
            inbound: BTreeMap::new(),
            next_seq: 0,
        }
    }

    /// Validates and starts a reliable transfer; see
    /// `MeshNode::send_reliable` for the public contract.
    pub(crate) fn send_reliable(
        &mut self,
        dst: Address,
        payload: Vec<u8>,
        now: Duration,
        config: &MeshConfig,
        bus: &mut Bus,
        routing: &RoutingLayer,
    ) -> Result<u8, SendError> {
        if payload.is_empty() {
            return Err(SendError::EmptyPayload);
        }
        if dst.is_broadcast() {
            return Err(SendError::BroadcastUnsupported);
        }
        if routing.table.next_hop(dst).is_none() {
            return Err(SendError::NoRoute(dst));
        }
        if self.outbound.contains_key(&dst) {
            return Err(SendError::TransferInProgress(dst));
        }
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        let mut transfer = OutboundTransfer::new(
            dst,
            seq,
            &payload,
            MAX_FRAG_PAYLOAD,
            config.reliable_timeout,
            config.reliable_max_retries,
        );
        let action = transfer.start(now);
        transfer.defer_deadline(bus.ack_jitter(config.reliable_timeout));
        self.outbound.insert(dst, transfer);
        self.apply_sender_action(dst, action, now, config, bus, routing);
        Ok(seq)
    }

    fn apply_sender_action(
        &mut self,
        dst: Address,
        action: SenderAction,
        _now: Duration,
        config: &MeshConfig,
        bus: &mut Bus,
        routing: &RoutingLayer,
    ) {
        match action {
            SenderAction::None => {}
            SenderAction::SendSync => {
                let Some(t) = self.outbound.get(&dst) else {
                    return;
                };
                let (seq, frag_count, total_len) = (t.seq, t.frag_count(), t.total_len());
                let Some(via) = routing.table.next_hop(dst) else {
                    bus.stats.no_route_drops += 1;
                    return;
                };
                let id = bus.next_id();
                let packet = Packet::Sync {
                    dst,
                    src: config.address,
                    id,
                    fwd: Forwarding {
                        via,
                        ttl: config.max_ttl,
                    },
                    seq,
                    frag_count,
                    total_len,
                };
                let _ = bus.enqueue(packet);
            }
            SenderAction::SendFrag(index) => {
                let Some(t) = self.outbound.get(&dst) else {
                    return;
                };
                let (seq, data) = (t.seq, t.fragment(index).to_vec());
                let Some(via) = routing.table.next_hop(dst) else {
                    bus.stats.no_route_drops += 1;
                    return;
                };
                let id = bus.next_id();
                let packet = Packet::Frag {
                    dst,
                    src: config.address,
                    id,
                    fwd: Forwarding {
                        via,
                        ttl: config.max_ttl,
                    },
                    seq,
                    index,
                    data,
                };
                let _ = bus.enqueue(packet);
            }
            SenderAction::Completed => {
                if let Some(t) = self.outbound.remove(&dst) {
                    bus.stats.reliable_sent += 1;
                    bus.stats.reliable_retransmits += u64::from(t.retransmits);
                    bus.emit(MeshEvent::ReliableDelivered { dst, seq: t.seq });
                }
            }
            SenderAction::Aborted(_) => {
                if let Some(t) = self.outbound.remove(&dst) {
                    bus.stats.reliable_aborted += 1;
                    bus.stats.reliable_retransmits += u64::from(t.retransmits);
                    bus.emit(MeshEvent::ReliableFailed { dst, seq: t.seq });
                }
            }
        }
    }

    /// Sends a reliable-transfer control packet back to `peer`.
    fn send_control(
        &mut self,
        peer: Address,
        seq: u8,
        kind: ControlKind,
        config: &MeshConfig,
        bus: &mut Bus,
        routing: &RoutingLayer,
    ) {
        let Some(via) = routing.table.next_hop(peer) else {
            bus.stats.no_route_drops += 1;
            return;
        };
        let id = bus.next_id();
        let fwd = Forwarding {
            via,
            ttl: config.max_ttl,
        };
        let src = config.address;
        let packet = match kind {
            ControlKind::Ack(index) => Packet::Ack {
                dst: peer,
                src,
                id,
                fwd,
                seq,
                index,
            },
            ControlKind::Lost(missing) => Packet::Lost {
                dst: peer,
                src,
                id,
                fwd,
                seq,
                missing,
            },
        };
        let _ = bus.enqueue(packet);
    }

    /// Consumes a transport packet addressed to this node (dispatch from
    /// `on_frame`; Hello and Data never reach here).
    pub(crate) fn consume(
        &mut self,
        packet: Packet,
        now: Duration,
        config: &MeshConfig,
        bus: &mut Bus,
        routing: &RoutingLayer,
    ) {
        match packet {
            Packet::Hello { .. } | Packet::Data { .. } => {
                // Routed to the routing/app layers in on_frame; tolerate
                // a misdispatch instead of crashing the node.
                debug_assert!(false, "hello/data handled before the transport layer");
            }
            Packet::Sync {
                src,
                seq,
                frag_count,
                total_len,
                ..
            } => {
                if frag_count == 0 {
                    bus.stats.decode_errors += 1;
                    return;
                }
                let transfer = self
                    .inbound
                    .entry((src, seq))
                    .or_insert_with(|| InboundTransfer::new(src, seq, frag_count, total_len, now));
                let ReceiverAction::AckSync = transfer.on_sync(now) else {
                    return;
                };
                self.send_control(
                    src,
                    seq,
                    ControlKind::Ack(SYNC_ACK_INDEX),
                    config,
                    bus,
                    routing,
                );
            }
            Packet::Frag {
                src,
                seq,
                index,
                data,
                ..
            } => {
                let Some(transfer) = self.inbound.get_mut(&(src, seq)) else {
                    // Sync never arrived (or expired): nothing to attach to.
                    return;
                };
                let actions = transfer.on_frag(index, &data, now);
                for action in actions {
                    match action {
                        ReceiverAction::AckSync => {
                            self.send_control(
                                src,
                                seq,
                                ControlKind::Ack(SYNC_ACK_INDEX),
                                config,
                                bus,
                                routing,
                            );
                        }
                        ReceiverAction::AckFrag(i) => {
                            self.send_control(src, seq, ControlKind::Ack(i), config, bus, routing);
                        }
                        ReceiverAction::Complete(payload) => {
                            bus.stats.reliable_received += 1;
                            bus.emit(MeshEvent::ReliableReceived { src, payload });
                        }
                    }
                }
            }
            Packet::Ack {
                src, seq, index, ..
            } => {
                let jitter = bus.ack_jitter(config.reliable_timeout);
                let action = match self.outbound.get_mut(&src) {
                    Some(t) if t.seq == seq => {
                        let action = t.on_ack(index, now);
                        t.defer_deadline(jitter);
                        Some(action)
                    }
                    _ => None,
                };
                if let Some(action) = action {
                    self.apply_sender_action(src, action, now, config, bus, routing);
                }
            }
            Packet::Lost {
                src, seq, missing, ..
            } => {
                let jitter = bus.ack_jitter(config.reliable_timeout);
                let action = match self.outbound.get_mut(&src) {
                    Some(t) if t.seq == seq => {
                        let action = t.on_lost(&missing, now);
                        t.defer_deadline(jitter);
                        Some(action)
                    }
                    _ => None,
                };
                if let Some(action) = action {
                    self.apply_sender_action(src, action, now, config, bus, routing);
                }
            }
        }
    }

    /// Steps 3–4 of the dispatch order: outbound retransmission
    /// deadlines, then stalled-inbound LOST nudges, then inbound
    /// reassembly expiry.
    pub(crate) fn process_due(
        &mut self,
        now: Duration,
        config: &MeshConfig,
        bus: &mut Bus,
        routing: &RoutingLayer,
    ) {
        // 3. Outbound reliable deadlines.
        let due: Vec<Address> = self
            .outbound
            .iter()
            .filter(|(_, t)| t.deadline().is_some_and(|d| d <= now))
            .map(|(dst, _)| *dst)
            .collect();
        for dst in due {
            let jitter = bus.ack_jitter(config.reliable_timeout);
            let action = self
                .outbound
                .get_mut(&dst)
                .map(|t| {
                    let action = t.on_timeout(now);
                    t.defer_deadline(jitter);
                    action
                })
                .unwrap_or(SenderAction::None);
            self.apply_sender_action(dst, action, now, config, bus, routing);
        }
        // 4a. Inbound transfers that stalled mid-way: nudge the sender
        //     with a Lost request listing the missing fragments.
        let stalled: Vec<(Address, u8, Vec<u16>)> = self
            .inbound
            .iter()
            .filter(|(_, t)| {
                t.stalled(now, config.reliable_timeout)
                    && t.lost_requests() < config.reliable_max_retries
                    && !t.missing().is_empty()
            })
            .map(|(k, t)| (k.0, k.1, t.missing()))
            .collect();
        for (src, seq, missing) in stalled {
            if let Some(t) = self.inbound.get_mut(&(src, seq)) {
                t.note_lost_sent(now);
            }
            self.send_control(src, seq, ControlKind::Lost(missing), config, bus, routing);
        }
        // 4b. Inbound reassembly expiry.
        let expired: Vec<(Address, u8)> = self
            .inbound
            .iter()
            .filter(|(_, t)| t.expired(now, config.reassembly_timeout))
            .map(|(k, _)| *k)
            .collect();
        for key in expired {
            if let Some(t) = self.inbound.remove(&key) {
                if !t.is_delivered() {
                    bus.stats.reliable_aborted += 1;
                    bus.emit(MeshEvent::InboundTransferExpired {
                        src: key.0,
                        seq: key.1,
                    });
                }
            }
        }
    }

    /// The earliest transport deadline, for `next_wake`.
    pub(crate) fn next_wake(&self, config: &MeshConfig) -> Option<Duration> {
        let outbound = self
            .outbound
            .values()
            .filter_map(OutboundTransfer::deadline)
            .min();
        let reassembly = self
            .inbound
            .values()
            .map(|t| t.last_activity + config.reassembly_timeout)
            .min();
        let stall = self
            .inbound
            .values()
            .filter(|t| t.lost_requests() < config.reliable_max_retries)
            .filter_map(|t| t.stall_deadline(config.reliable_timeout))
            .min();
        [outbound, reassembly, stall].into_iter().flatten().min()
    }

    /// Retransmissions of transfers still in flight (stats snapshots).
    pub(crate) fn in_flight_retransmits(&self) -> u64 {
        self.outbound
            .values()
            .map(|t| u64::from(t.retransmits))
            .sum()
    }

    /// Progress of the active outbound transfers (diagnostics).
    pub(crate) fn outbound_transfers(&self) -> Vec<(Address, u8, TransferPhase)> {
        self.outbound
            .iter()
            .map(|(dst, t)| (*dst, t.seq, t.phase()))
            .collect()
    }

    /// Progress of the active inbound transfers (diagnostics).
    pub(crate) fn inbound_transfers(&self) -> Vec<(Address, u8, usize, usize)> {
        self.inbound
            .iter()
            .map(|((src, seq), t)| {
                (
                    *src,
                    *seq,
                    t.received_count(),
                    t.received_count() + t.missing().len(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alloc::vec;

    const ME: Address = Address::new(1);
    const PEER: Address = Address::new(2);

    fn parts() -> (MeshConfig, RoutingLayer, TransportLayer, Bus) {
        let config = MeshConfig::builder(ME).build();
        let mut routing = RoutingLayer::new(&config);
        routing.table.heard_from(PEER, 0.0, Duration::ZERO);
        let bus = Bus::new(config.seed, config.tx_queue_capacity);
        (config, routing, TransportLayer::new(), bus)
    }

    #[test]
    fn send_reliable_queues_a_sync_through_the_bus() {
        let (config, routing, mut t, mut bus) = parts();
        let seq = t
            .send_reliable(
                PEER,
                vec![9; 300],
                Duration::ZERO,
                &config,
                &mut bus,
                &routing,
            )
            .expect("route exists");
        assert_eq!(seq, 0);
        match bus.txq.pop() {
            Some(Packet::Sync {
                dst, frag_count, ..
            }) => {
                assert_eq!(dst, PEER);
                assert!(frag_count > 0);
            }
            p => panic!("unexpected {p:?}"),
        }
        assert_eq!(t.outbound_transfers().len(), 1);
    }

    #[test]
    fn second_transfer_to_same_destination_is_refused() {
        let (config, routing, mut t, mut bus) = parts();
        t.send_reliable(
            PEER,
            vec![1; 100],
            Duration::ZERO,
            &config,
            &mut bus,
            &routing,
        )
        .unwrap();
        assert_eq!(
            t.send_reliable(
                PEER,
                vec![2; 100],
                Duration::ZERO,
                &config,
                &mut bus,
                &routing
            ),
            Err(SendError::TransferInProgress(PEER))
        );
    }

    #[test]
    fn zero_fragment_sync_is_rejected() {
        let (config, routing, mut t, mut bus) = parts();
        t.consume(
            Packet::Sync {
                dst: ME,
                src: PEER,
                id: 1,
                fwd: Forwarding { via: ME, ttl: 5 },
                seq: 0,
                frag_count: 0,
                total_len: 0,
            },
            Duration::ZERO,
            &config,
            &mut bus,
            &routing,
        );
        assert_eq!(bus.stats.decode_errors, 1);
        assert!(t.inbound_transfers().is_empty());
    }

    #[test]
    fn ack_for_unknown_transfer_is_ignored() {
        let (config, routing, mut t, mut bus) = parts();
        t.consume(
            Packet::Ack {
                dst: ME,
                src: PEER,
                id: 0,
                fwd: Forwarding { via: ME, ttl: 5 },
                seq: 9,
                index: 0,
            },
            Duration::ZERO,
            &config,
            &mut bus,
            &routing,
        );
        assert!(bus.events.is_empty());
        assert!(t.outbound_transfers().is_empty());
    }

    /// A sync with no follow-up fragments trips the stall deadline; the
    /// layer must nudge the sender with a LOST listing every fragment.
    #[test]
    fn stalled_inbound_transfer_emits_a_lost_request() {
        let (config, routing, mut t, mut bus) = parts();
        t.consume(
            Packet::Sync {
                dst: ME,
                src: PEER,
                id: 1,
                fwd: Forwarding { via: ME, ttl: 5 },
                seq: 3,
                frag_count: 2,
                total_len: 20,
            },
            Duration::ZERO,
            &config,
            &mut bus,
            &routing,
        );
        // The sync-ack leaves immediately.
        assert!(matches!(bus.txq.pop(), Some(Packet::Ack { .. })));
        let stall_at = config.reliable_timeout + Duration::from_secs(1);
        assert!(t.next_wake(&config).is_some_and(|w| w <= stall_at));
        t.process_due(stall_at, &config, &mut bus, &routing);
        match bus.txq.pop() {
            Some(Packet::Lost { missing, .. }) => assert_eq!(missing, vec![0, 1]),
            p => panic!("unexpected {p:?}"),
        }
    }

    /// An abandoned inbound transfer expires into an app event.
    #[test]
    fn expired_inbound_transfer_reports_to_the_app() {
        let (config, routing, mut t, mut bus) = parts();
        t.consume(
            Packet::Sync {
                dst: ME,
                src: PEER,
                id: 1,
                fwd: Forwarding { via: ME, ttl: 5 },
                seq: 7,
                frag_count: 2,
                total_len: 20,
            },
            Duration::ZERO,
            &config,
            &mut bus,
            &routing,
        );
        t.process_due(
            config.reassembly_timeout + Duration::from_secs(1),
            &config,
            &mut bus,
            &routing,
        );
        assert!(t.inbound_transfers().is_empty());
        assert_eq!(bus.stats.reliable_aborted, 1);
        assert!(bus.events.iter().any(
            |e| matches!(e, MeshEvent::InboundTransferExpired { src, seq: 7 } if *src == PEER)
        ));
    }
}
