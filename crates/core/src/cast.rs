//! Checked narrowing conversions (meshlint rule C1).
//!
//! Addresses, lengths, fragment counts and sequence numbers travel the
//! wire as `u8`/`u16`; a bare `as` cast silently wraps when the value
//! outgrew the field, corrupting the frame in a way no test catches
//! until routing misbehaves. These helpers make the overflow policy
//! explicit at the call site: saturate (for counters that only feed
//! diagnostics) or error (for values that end up on the wire).

/// Saturating `usize` → `u16`: values above `u16::MAX` clamp to
/// `u16::MAX` instead of wrapping.
#[must_use]
pub fn sat_u16(n: usize) -> u16 {
    u16::try_from(n).unwrap_or(u16::MAX)
}

/// Saturating `usize` → `u8`: values above `u8::MAX` clamp to
/// `u8::MAX` instead of wrapping.
#[must_use]
pub fn sat_u8(n: usize) -> u8 {
    u8::try_from(n).unwrap_or(u8::MAX)
}

/// Saturating `usize` → `u32`.
#[must_use]
pub fn sat_u32(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_instead_of_wrapping() {
        assert_eq!(sat_u16(7), 7);
        assert_eq!(sat_u16(usize::from(u16::MAX) + 1), u16::MAX);
        assert_eq!(sat_u8(255), 255);
        assert_eq!(sat_u8(256), u8::MAX);
        assert_eq!(sat_u32(12), 12);
    }
}
