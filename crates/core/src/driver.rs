//! The sans-IO host interface.
//!
//! A [`NodeProtocol`] is a protocol stack expressed as a pure state
//! machine: the host (real firmware, or the `radio-sim` simulator) calls
//! the `on_*` methods when radio events happen and executes the returned
//! [`RadioRequest`]s. Time is passed in as an offset from an arbitrary
//! epoch, so any monotonic clock works.
//!
//! Both [`crate::MeshNode`] and the baseline protocols in the
//! `mesh-baselines` crate implement this trait, which is what lets the
//! experiments run them on identical simulated physics.

use std::time::Duration;

use lora_phy::link::SignalQuality;

/// An action the protocol asks its radio to perform.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RadioRequest {
    /// Transmit this frame now. Must only be issued when the radio is
    /// known idle (after a clear CAD result, or at start-up before any
    /// reception can be in progress).
    Transmit(Vec<u8>),
    /// Perform a channel-activity-detection scan; the result arrives via
    /// [`NodeProtocol::on_cad_done`].
    StartCad,
}

/// An event-driven, sans-IO protocol stack.
pub trait NodeProtocol {
    /// Called once when the node boots.
    fn on_start(&mut self, now: Duration) -> Vec<RadioRequest>;

    /// Called when the wake-up deadline from [`NodeProtocol::next_wake`]
    /// is reached.
    fn on_timer(&mut self, now: Duration) -> Vec<RadioRequest>;

    /// Called for every successfully received frame.
    fn on_frame(
        &mut self,
        frame: &[u8],
        quality: SignalQuality,
        now: Duration,
    ) -> Vec<RadioRequest>;

    /// Called when a requested transmission has completed on air.
    fn on_tx_done(&mut self, now: Duration) -> Vec<RadioRequest>;

    /// Called when a CAD scan completes; `busy` reports channel activity.
    fn on_cad_done(&mut self, busy: bool, now: Duration) -> Vec<RadioRequest>;

    /// The next instant at which [`NodeProtocol::on_timer`] should run,
    /// or `None` when the protocol has nothing scheduled.
    fn next_wake(&self) -> Option<Duration>;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The trait must be object-safe: hosts store heterogeneous protocol
    /// stacks behind `dyn NodeProtocol`.
    #[test]
    fn node_protocol_is_object_safe() {
        struct Nop;
        impl NodeProtocol for Nop {
            fn on_start(&mut self, _: Duration) -> Vec<RadioRequest> {
                vec![]
            }
            fn on_timer(&mut self, _: Duration) -> Vec<RadioRequest> {
                vec![]
            }
            fn on_frame(&mut self, _: &[u8], _: SignalQuality, _: Duration) -> Vec<RadioRequest> {
                vec![]
            }
            fn on_tx_done(&mut self, _: Duration) -> Vec<RadioRequest> {
                vec![]
            }
            fn on_cad_done(&mut self, _: bool, _: Duration) -> Vec<RadioRequest> {
                vec![RadioRequest::StartCad]
            }
            fn next_wake(&self) -> Option<Duration> {
                None
            }
        }
        let mut boxed: Box<dyn NodeProtocol> = Box::new(Nop);
        assert!(boxed.on_start(Duration::ZERO).is_empty());
        assert_eq!(
            boxed.on_cad_done(false, Duration::ZERO),
            vec![RadioRequest::StartCad]
        );
    }
}
