//! The sans-IO host interface.
//!
//! A [`NodeProtocol`] is a pure, event-driven protocol stack: the host —
//! a discrete-event simulator, or firmware glue on real hardware — calls
//! back into it with received frames, timer expirations and radio
//! completions, and the stack answers by pushing [`RadioRequest`]s into
//! the [`RadioIo`] sink it was handed. Nothing here touches a clock, a
//! radio or a thread; time is whatever the host says it is.
//!
//! This is the *only* host trait in the workspace: the `radio-sim`
//! simulator consumes it directly (re-exported there as `Firmware` /
//! `Context` for continuity), and a hardware shim would drive the same
//! callbacks from DIO interrupts and a hardware timer. Frames travel as
//! `Arc<[u8]>` end to end, so handing a cached frame to the host bumps a
//! refcount instead of copying the bytes.

use alloc::sync::Arc;
use alloc::vec::Vec;
use core::time::Duration;

use lora_phy::link::SignalQuality;

/// What a protocol asks its radio to do.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RadioRequest {
    /// Put a frame on the air. Must only be issued when the radio is
    /// known idle (after a clear CAD result, or via a protocol's own
    /// medium-access rules). The shared bytes are immutable; hosts clone
    /// the `Arc`, never the payload.
    Transmit(Arc<[u8]>),
    /// Run a channel-activity-detection scan; the host answers with
    /// [`NodeProtocol::on_cad_done`].
    StartCad,
}

/// The per-callback bridge between a host and a [`NodeProtocol`]: tells
/// the stack what time it is and collects the radio requests it issues.
///
/// Hosts that care about steady-state allocations recycle the request
/// buffer across callbacks with [`RadioIo::with_buffer`] /
/// [`RadioIo::take_requests`].
#[derive(Debug)]
pub struct RadioIo {
    now: Duration,
    requests: Vec<RadioRequest>,
}

impl RadioIo {
    /// An IO sink at the given host time with a fresh request buffer.
    #[must_use]
    pub fn new(now: Duration) -> Self {
        RadioIo {
            now,
            requests: Vec::new(),
        }
    }

    /// An IO sink reusing `buffer` as request storage (cleared first).
    #[must_use]
    pub fn with_buffer(now: Duration, mut buffer: Vec<RadioRequest>) -> Self {
        buffer.clear();
        RadioIo {
            now,
            requests: buffer,
        }
    }

    /// Current host time (since host start).
    #[must_use]
    pub fn now(&self) -> Duration {
        self.now
    }

    /// Requests the host transmit a frame.
    pub fn transmit(&mut self, frame: impl Into<Arc<[u8]>>) {
        self.requests.push(RadioRequest::Transmit(frame.into()));
    }

    /// Requests a channel-activity-detection scan.
    pub fn start_cad(&mut self) {
        self.requests.push(RadioRequest::StartCad);
    }

    /// Consumes the sink, yielding the issued requests in issue order.
    #[must_use]
    pub fn take_requests(self) -> Vec<RadioRequest> {
        self.requests
    }
}

/// A sans-IO protocol stack, driven entirely by host callbacks.
///
/// All callbacks have empty defaults except [`NodeProtocol::on_frame`]
/// and [`NodeProtocol::next_wake`], which every useful protocol needs.
pub trait NodeProtocol {
    /// Called once when the node boots.
    fn on_start(&mut self, io: &mut RadioIo) {
        let _ = io;
    }

    /// Called when the wake-up time reported by
    /// [`NodeProtocol::next_wake`] is reached.
    fn on_timer(&mut self, io: &mut RadioIo) {
        let _ = io;
    }

    /// Called for every frame the radio receives.
    fn on_frame(&mut self, frame: &[u8], quality: SignalQuality, io: &mut RadioIo);

    /// Called when a requested transmission has left the antenna.
    fn on_tx_done(&mut self, io: &mut RadioIo) {
        let _ = io;
    }

    /// Called when a requested CAD scan finishes; `busy` reports whether
    /// channel activity was detected.
    fn on_cad_done(&mut self, busy: bool, io: &mut RadioIo) {
        let _ = (busy, io);
    }

    /// Called when a host-scheduled application event fires; `tag` is
    /// whatever the host registered with the event.
    fn on_app(&mut self, tag: u64, io: &mut RadioIo) {
        let _ = (tag, io);
    }

    /// The next host time at which the protocol wants
    /// [`NodeProtocol::on_timer`] to run, or `None` when idle.
    fn next_wake(&self) -> Option<Duration>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use alloc::boxed::Box;
    use alloc::vec;

    /// The trait must stay object-safe: hosts store heterogeneous
    /// protocol stacks behind `dyn NodeProtocol`.
    #[test]
    fn node_protocol_is_object_safe() {
        struct Nop;
        impl NodeProtocol for Nop {
            fn on_frame(&mut self, _f: &[u8], _q: SignalQuality, _io: &mut RadioIo) {}
            fn next_wake(&self) -> Option<Duration> {
                None
            }
        }
        let mut node: Box<dyn NodeProtocol> = Box::new(Nop);
        let mut io = RadioIo::new(Duration::ZERO);
        node.on_start(&mut io);
        node.on_timer(&mut io);
        node.on_tx_done(&mut io);
        node.on_cad_done(false, &mut io);
        node.on_app(7, &mut io);
        assert!(io.take_requests().is_empty());
        assert_eq!(node.next_wake(), None);
    }

    #[test]
    fn io_collects_requests_in_order() {
        let mut io = RadioIo::new(Duration::from_millis(7));
        assert_eq!(io.now(), Duration::from_millis(7));
        io.start_cad();
        io.transmit(vec![1, 2, 3]);
        assert_eq!(
            io.take_requests(),
            vec![
                RadioRequest::StartCad,
                RadioRequest::Transmit(vec![1, 2, 3].into())
            ]
        );
    }

    #[test]
    fn with_buffer_reuses_storage_and_clears_stale_requests() {
        let stale = vec![RadioRequest::StartCad; 3];
        let mut io = RadioIo::with_buffer(Duration::ZERO, stale);
        let payload: Arc<[u8]> = vec![9].into();
        io.transmit(payload.clone());
        assert_eq!(io.take_requests(), vec![RadioRequest::Transmit(payload)]);
    }

    /// A cached frame is forwarded by refcount, not copied.
    #[test]
    fn transmit_shares_cached_frames() {
        let cached: Arc<[u8]> = vec![0xAB; 32].into();
        let mut io = RadioIo::new(Duration::ZERO);
        io.transmit(cached.clone());
        let requests = io.take_requests();
        assert!(matches!(
            requests.first(),
            Some(RadioRequest::Transmit(sent)) if Arc::ptr_eq(sent, &cached)
        ));
    }
}
