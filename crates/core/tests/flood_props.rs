//! Property tests for the managed-flooding stack's duplicate-suppression
//! cache, driven through [`FloodNode`]'s public sans-IO surface (the
//! cache itself is crate-private — these pin its *observable* contract):
//!
//! * a relay rebroadcasts each distinct `(origin, id)` flood at most
//!   once, however the duplicates are interleaved;
//! * the seen-cache never holds more entries than its configured
//!   capacity, whatever traffic pattern it absorbs;
//! * a frame whose hop limit is spent is never forwarded.
//!
//! Uses the in-repo `testkit` harness: failures print a replayable
//! `TESTKIT_SEED` and a shrunk counterexample.

use std::time::Duration;

use lora_phy::link::SignalQuality;
use loramesher::codec;
use loramesher::driver::{NodeProtocol, RadioIo, RadioRequest};
use loramesher::flood::{FloodConfig, FloodNode};
use loramesher::packet::{Forwarding, Packet};
use loramesher::Address;
use testkit::{forall, prop_assert, prop_assert_eq, Gen};

/// The relay under test. Address 1; origins are drawn from 2..=5.
const RELAY: Address = Address::new(1);

fn relay_node() -> FloodNode {
    let mut node = FloodNode::new(FloodConfig::new(RELAY));
    let mut io = RadioIo::new(Duration::ZERO);
    node.on_start(&mut io);
    node
}

/// One incoming flood frame as the generator draws it.
#[derive(Debug)]
struct ArbFlood {
    origin: Address,
    id: u8,
    dst: Address,
    ttl: u8,
    snr: f64,
    payload: Vec<u8>,
}

impl ArbFlood {
    fn wire(&self) -> Vec<u8> {
        codec::encode(&Packet::Data {
            dst: self.dst,
            src: self.origin,
            id: self.id,
            fwd: Forwarding {
                via: Address::BROADCAST,
                ttl: self.ttl,
            },
            payload: self.payload.clone(),
        })
        .expect("generated frames fit the wire format")
    }
}

/// Feeds `flood` to the node at `now` with the flood's SNR.
fn receive(node: &mut FloodNode, flood: &ArbFlood, now: Duration) {
    let quality = SignalQuality {
        snr: flood.snr,
        ..SignalQuality::ideal()
    };
    let mut io = RadioIo::new(now);
    node.on_frame(&flood.wire(), quality, &mut io);
}

/// Runs the node's radio loop from `now` until it goes idle, following
/// the wake-up times it schedules (MAC backoffs between frames) and
/// returning every transmitted frame. CAD scans report a clear channel.
fn drain(node: &mut FloodNode, mut now: Duration) -> Vec<std::sync::Arc<[u8]>> {
    let mut frames = Vec::new();
    let mut guard = 0;
    loop {
        guard += 1;
        assert!(guard < 10_000, "runaway radio loop");
        let mut io = RadioIo::new(now);
        node.on_timer(&mut io);
        let mut requests = io.take_requests();
        while let Some(req) = requests.pop() {
            guard += 1;
            assert!(guard < 10_000, "runaway radio loop");
            let mut io = RadioIo::new(now);
            match req {
                RadioRequest::StartCad => node.on_cad_done(false, &mut io),
                RadioRequest::Transmit(f) => {
                    frames.push(f);
                    node.on_tx_done(&mut io);
                }
            }
            requests.extend(io.take_requests());
        }
        match node.next_wake() {
            Some(at) => now = now.max(at),
            None => return frames,
        }
    }
}

/// The distinct `(origin, id)` keys of a batch, in sorted order.
fn distinct_keys(floods: &[ArbFlood]) -> Vec<(Address, u8)> {
    let mut keys: Vec<(Address, u8)> = floods.iter().map(|f| (f.origin, f.id)).collect();
    keys.sort_unstable();
    keys.dedup();
    keys
}

/// Far enough in the future that every pending relay delay (bounded by
/// the rebroadcast window plus queue backoff) has elapsed.
const LATER: Duration = Duration::from_secs(3600);

#[test]
fn relay_never_rebroadcasts_a_duplicate() {
    forall(
        "relay_never_rebroadcasts_a_duplicate",
        |g: &mut Gen| {
            // Ids from a tiny space and origins from two addresses force
            // plenty of (origin, id) collisions in arrival order.
            g.vec_of(1, 24, |g| ArbFlood {
                origin: Address::new(g.int_in(2, 3) as u16),
                id: g.int_in(0, 7) as u8,
                dst: Address::new(9), // somebody else: always a relay case
                ttl: g.int_in(2, 7) as u8,
                snr: g.f64() * 30.0 - 10.0,
                payload: g.bytes(1, 32),
            })
        },
        |floods| {
            let mut node = relay_node();
            for (i, flood) in floods.iter().enumerate() {
                receive(&mut node, flood, Duration::from_millis(i as u64));
            }
            let sent = drain(&mut node, LATER);
            let distinct = distinct_keys(floods);
            prop_assert_eq!(sent.len(), distinct.len());
            prop_assert_eq!(
                node.stats().duplicates_suppressed,
                (floods.len() - distinct.len()) as u64
            );
            // The same floods arriving again are all duplicates now.
            for (i, flood) in floods.iter().enumerate() {
                receive(&mut node, flood, LATER + Duration::from_millis(i as u64));
            }
            prop_assert_eq!(drain(&mut node, LATER * 2).len(), 0);
            Ok(())
        },
    );
}

#[test]
fn seen_cache_memory_stays_bounded() {
    forall(
        "seen_cache_memory_stays_bounded",
        |g: &mut Gen| {
            let capacity = g.usize_in(1, 16);
            // Unicasts addressed *to* the relay: every distinct frame
            // populates the cache without queueing a rebroadcast, so
            // the traffic volume is unconstrained by the tx queue.
            let floods = g.vec_of(1, 80, |g| ArbFlood {
                origin: Address::new(g.int_in(2, 5) as u16),
                id: g.u8(),
                dst: RELAY,
                ttl: g.int_in(1, 7) as u8,
                snr: 10.0,
                payload: g.bytes(1, 8),
            });
            (capacity, floods)
        },
        |(capacity, floods)| {
            let mut config = FloodConfig::new(RELAY);
            config.seen_cache = *capacity;
            let mut node = FloodNode::new(config);
            let mut io = RadioIo::new(Duration::ZERO);
            node.on_start(&mut io);
            prop_assert_eq!(node.seen_capacity(), *capacity);
            for (i, flood) in floods.iter().enumerate() {
                receive(&mut node, flood, Duration::from_millis(i as u64));
                prop_assert!(
                    node.seen_len() <= node.seen_capacity(),
                    "cache held {} entries with capacity {}",
                    node.seen_len(),
                    node.seen_capacity()
                );
            }
            Ok(())
        },
    );
}

#[test]
fn spent_hop_limit_is_never_forwarded() {
    forall(
        "spent_hop_limit_is_never_forwarded",
        |g: &mut Gen| {
            g.vec_of(1, 24, |g| ArbFlood {
                origin: Address::new(g.int_in(2, 5) as u16),
                id: g.u8(),
                dst: if g.bool(0.5) {
                    Address::BROADCAST
                } else {
                    Address::new(9)
                },
                // Arriving with 0 or 1 hop left: decrementing exhausts
                // the budget, so the flood must die at this relay.
                ttl: g.int_in(0, 1) as u8,
                snr: g.f64() * 30.0 - 10.0,
                payload: g.bytes(1, 32),
            })
        },
        |floods| {
            let mut node = relay_node();
            for (i, flood) in floods.iter().enumerate() {
                receive(&mut node, flood, Duration::from_millis(i as u64));
            }
            prop_assert_eq!(node.pending_relays(), 0);
            prop_assert_eq!(drain(&mut node, LATER).len(), 0);
            // Duplicates are suppressed before the hop-limit check, so
            // only first sightings count as hop-limit drops.
            prop_assert_eq!(
                node.stats().hop_limit_drops,
                distinct_keys(floods).len() as u64
            );
            Ok(())
        },
    );
}
