//! Fuzz-style properties over the wire codec (meshlint rule R1's
//! runtime counterpart): `decode` must never panic on arbitrary bytes —
//! over-the-air input is untrusted — and encode/decode must be exact
//! inverses on every valid frame.
//!
//! Uses the in-repo `testkit` harness: failures print a replayable
//! `TESTKIT_SEED` and a shrunk counterexample.

use loramesher::codec::{decode, encode, encoded_len, MAX_FRAME_LEN};
use loramesher::packet::{Forwarding, Packet, RouteEntry};
use loramesher::Address;
use testkit::{forall, prop_assert, prop_assert_eq, Gen};

/// A random packet of a random kind with field values spanning the full
/// wire ranges, sized to always fit a frame.
fn arb_packet(g: &mut Gen) -> Packet {
    let dst = Address::new(g.u16());
    let src = Address::new(g.u16());
    let id = g.u8();
    let fwd = Forwarding {
        via: Address::new(g.u16()),
        ttl: g.u8(),
    };
    match g.usize_in(0, 5) {
        0 => Packet::Hello {
            src,
            id,
            role: g.u8(),
            entries: g.vec_of(0, 40, |g| RouteEntry {
                address: Address::new(g.u16()),
                metric: g.u8(),
                role: g.u8(),
            }),
        },
        1 => Packet::Data {
            dst,
            src,
            id,
            fwd,
            payload: g.bytes(0, 200),
        },
        2 => Packet::Sync {
            dst,
            src,
            id,
            fwd,
            seq: g.u8(),
            frag_count: g.u16(),
            total_len: g.u32(),
        },
        3 => Packet::Frag {
            dst,
            src,
            id,
            fwd,
            seq: g.u8(),
            index: g.u16(),
            data: g.bytes(0, 200),
        },
        4 => Packet::Ack {
            dst,
            src,
            id,
            fwd,
            seq: g.u8(),
            index: g.u16(),
        },
        _ => Packet::Lost {
            dst,
            src,
            id,
            fwd,
            seq: g.u8(),
            missing: g.vec_of(0, 80, Gen::u16),
        },
    }
}

#[test]
fn decode_never_panics_on_random_bytes() {
    // The property body IS the assertion: a panic inside `decode` fails
    // the test with a replay seed. Either verdict is acceptable.
    forall(
        "decode_random_bytes",
        |g| g.bytes(0, 300),
        |bytes| {
            let _ = decode(bytes);
            Ok(())
        },
    );
}

#[test]
fn decode_never_panics_on_mutated_valid_frames() {
    // Random single-byte corruption of a real frame explores the decode
    // branches that pure noise rarely reaches (valid kinds, near-valid
    // lengths).
    forall(
        "decode_mutated_frames",
        |g| {
            let mut wire = encode(&arb_packet(g)).unwrap_or_default();
            if !wire.is_empty() {
                let at = g.usize_in(0, wire.len() - 1);
                let flip = g.u8();
                if let Some(b) = wire.get_mut(at) {
                    *b ^= flip;
                }
                // Sometimes also truncate.
                if g.usize_in(0, 3) == 0 {
                    let keep = g.usize_in(0, wire.len());
                    wire.truncate(keep);
                }
            }
            wire
        },
        |bytes| {
            let _ = decode(bytes);
            Ok(())
        },
    );
}

#[test]
fn encode_decode_round_trips_every_kind() {
    forall("codec_round_trip", arb_packet, |packet| {
        let wire = encode(packet).map_err(|e| format!("encode failed: {e}"))?;
        prop_assert!(wire.len() <= MAX_FRAME_LEN, "frame over PHY limit");
        prop_assert_eq!(wire.len(), encoded_len(packet));
        let back = decode(&wire).map_err(|e| format!("decode failed: {e}"))?;
        prop_assert_eq!(&back, packet);
        // And decode∘encode is the identity on the byte level too: no
        // field is silently dropped or defaulted.
        let rewire = encode(&back).map_err(|e| format!("re-encode failed: {e}"))?;
        prop_assert_eq!(rewire, wire);
        Ok(())
    });
}

#[test]
fn decoded_frames_reencode_to_the_same_bytes() {
    // For arbitrary bytes that happen to decode, encoding the result
    // must reproduce the input exactly — `decode` accepts no frame it
    // cannot faithfully represent (trailing garbage, ragged bodies).
    forall(
        "decode_then_encode_identity",
        |g| g.bytes(0, 120),
        |bytes| {
            if let Ok(packet) = decode(bytes) {
                let rewire = encode(&packet).map_err(|e| format!("re-encode failed: {e}"))?;
                prop_assert_eq!(&rewire, bytes);
            }
            Ok(())
        },
    );
}
