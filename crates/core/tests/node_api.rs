//! Public-API integration tests for [`MeshNode`].
//!
//! These drive whole nodes through the sans-IO [`NodeProtocol`] host
//! interface — the same way the simulator and a hardware shim do — and
//! assert on observable behaviour only: routing tables, delivered
//! events, statistics and emitted radio requests. They complement the
//! per-layer unit tests inside `src/stack/` (which reach into layer
//! internals through the bus).

use std::time::Duration;

use lora_phy::link::SignalQuality;
use lora_phy::region::Region;

use loramesher::codec;
use loramesher::packet::{Forwarding, Packet, RouteEntry};
use loramesher::{
    Address, MeshConfig, MeshEvent, MeshNode, NodeProtocol, PacketKind, RadioIo, RadioRequest,
    SendError,
};

const A1: Address = Address::new(1);
const A2: Address = Address::new(2);
const A3: Address = Address::new(3);

fn node(addr: Address) -> MeshNode {
    MeshNode::new(
        MeshConfig::builder(addr)
            .region(Region::Unlimited)
            .hello_interval(Duration::from_secs(30))
            .build(),
    )
}

fn quality() -> SignalQuality {
    SignalQuality::ideal()
}

fn start(n: &mut MeshNode, now: Duration) {
    let mut io = RadioIo::new(now);
    n.on_start(&mut io);
    assert!(io.take_requests().is_empty(), "nothing to transmit at boot");
}

fn frame_in(n: &mut MeshNode, frame: &[u8], now: Duration) -> Vec<RadioRequest> {
    let mut io = RadioIo::new(now);
    n.on_frame(frame, quality(), &mut io);
    io.take_requests()
}

fn timer(n: &mut MeshNode, now: Duration) -> Vec<RadioRequest> {
    let mut io = RadioIo::new(now);
    n.on_timer(&mut io);
    io.take_requests()
}

fn cad_done(n: &mut MeshNode, busy: bool, now: Duration) -> Vec<RadioRequest> {
    let mut io = RadioIo::new(now);
    n.on_cad_done(busy, &mut io);
    io.take_requests()
}

fn tx_done(n: &mut MeshNode, now: Duration) -> Vec<RadioRequest> {
    let mut io = RadioIo::new(now);
    n.on_tx_done(&mut io);
    io.take_requests()
}

/// Drives a set of nodes until quiescent: fires due timers, answers
/// CAD requests with "clear", and delivers transmissions to every
/// other node. Advances time only when nothing is immediately due.
fn pump(nodes: &mut [MeshNode], until: Duration) {
    let mut now = Duration::ZERO;
    for n in nodes.iter_mut() {
        start(n, now);
    }
    while now <= until {
        // Fire all due work at `now`.
        let mut progressed = false;
        for i in 0..nodes.len() {
            let due = nodes[i].next_wake().is_some_and(|w| w <= now);
            if !due {
                continue;
            }
            progressed = true;
            let mut requests = timer(&mut nodes[i], now);
            // Resolve CAD immediately (clear channel in this harness).
            while let Some(req) = requests.pop() {
                match req {
                    RadioRequest::StartCad => {
                        requests.extend(cad_done(&mut nodes[i], false, now));
                    }
                    RadioRequest::Transmit(frame) => {
                        for (j, node) in nodes.iter_mut().enumerate() {
                            if j != i {
                                let _ = frame_in(node, &frame, now);
                            }
                        }
                        requests.extend(tx_done(&mut nodes[i], now));
                    }
                }
            }
        }
        if !progressed {
            // Jump to the next deadline.
            let next = nodes
                .iter()
                .filter_map(NodeProtocol::next_wake)
                .min()
                .unwrap_or(until + Duration::from_secs(1));
            now = next.max(now + Duration::from_millis(1));
        }
    }
}

#[test]
fn hello_exchange_builds_routes() {
    let mut nodes = vec![node(A1), node(A2)];
    pump(&mut nodes, Duration::from_secs(10));
    assert_eq!(nodes[0].routing_table().next_hop(A2), Some(A2));
    assert_eq!(nodes[1].routing_table().next_hop(A1), Some(A1));
    assert!(nodes[0].stats().hellos_sent >= 1);
    assert!(nodes[0].stats().hellos_received >= 1);
}

#[test]
fn datagram_delivered_between_neighbours() {
    let mut nodes = vec![node(A1), node(A2)];
    pump(&mut nodes, Duration::from_secs(10));
    let now = Duration::from_secs(10);
    nodes[0]
        .send_datagram(A2, b"ping".to_vec(), now)
        .expect("route exists");
    pump(&mut nodes, Duration::from_secs(12));
    let events = nodes[1].take_events();
    assert!(
        events.contains(&MeshEvent::Datagram {
            src: A1,
            payload: b"ping".to_vec()
        }),
        "events: {events:?}"
    );
    assert_eq!(nodes[1].stats().data_delivered, 1);
}

#[test]
fn broadcast_delivered_to_all() {
    let mut nodes = vec![node(A1), node(A2), node(A3)];
    pump(&mut nodes, Duration::from_secs(10));
    nodes[0]
        .send_datagram(Address::BROADCAST, b"hi".to_vec(), Duration::from_secs(10))
        .unwrap();
    pump(&mut nodes, Duration::from_secs(12));
    for n in &mut nodes[1..] {
        let events = n.take_events();
        assert!(events
            .iter()
            .any(|e| matches!(e, MeshEvent::Broadcast { src, .. } if *src == A1)));
    }
}

#[test]
fn send_without_route_fails() {
    let mut n = node(A1);
    start(&mut n, Duration::ZERO);
    assert_eq!(
        n.send_datagram(A2, vec![1], Duration::ZERO),
        Err(SendError::NoRoute(A2))
    );
    assert_eq!(
        n.send_reliable(A2, vec![1; 500], Duration::ZERO),
        Err(SendError::NoRoute(A2))
    );
}

#[test]
fn send_validation_errors() {
    let mut n = node(A1);
    start(&mut n, Duration::ZERO);
    assert_eq!(
        n.send_datagram(A2, vec![], Duration::ZERO),
        Err(SendError::EmptyPayload)
    );
    assert!(matches!(
        n.send_datagram(A2, vec![0; 4000], Duration::ZERO),
        Err(SendError::PayloadTooLarge { .. })
    ));
    assert_eq!(
        n.send_reliable(Address::BROADCAST, vec![1], Duration::ZERO),
        Err(SendError::BroadcastUnsupported)
    );
    assert_eq!(
        n.send_reliable(A2, vec![], Duration::ZERO),
        Err(SendError::EmptyPayload)
    );
}

#[test]
fn reliable_transfer_between_neighbours() {
    let mut nodes = vec![node(A1), node(A2)];
    pump(&mut nodes, Duration::from_secs(10));
    let payload: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
    let seq = nodes[0]
        .send_reliable(A2, payload.clone(), Duration::from_secs(10))
        .expect("route exists");
    pump(&mut nodes, Duration::from_secs(60));
    let rx_events = nodes[1].take_events();
    assert!(
        rx_events.iter().any(
            |e| matches!(e, MeshEvent::ReliableReceived { src, payload: p } if *src == A1 && *p == payload)
        ),
        "receiver events: {rx_events:?}"
    );
    let tx_events = nodes[0].take_events();
    assert!(tx_events.contains(&MeshEvent::ReliableDelivered { dst: A2, seq }));
    assert_eq!(nodes[0].stats().reliable_sent, 1);
    assert_eq!(nodes[1].stats().reliable_received, 1);
}

#[test]
fn second_transfer_to_same_dst_refused_while_active() {
    let mut nodes = vec![node(A1), node(A2)];
    pump(&mut nodes, Duration::from_secs(10));
    let now = Duration::from_secs(10);
    nodes[0].send_reliable(A2, vec![1; 500], now).unwrap();
    assert_eq!(
        nodes[0].send_reliable(A2, vec![2; 500], now),
        Err(SendError::TransferInProgress(A2))
    );
}

#[test]
fn reliable_transfer_aborts_when_peer_silent() {
    let a = node(A1);
    let b = node(A2);
    // Form routes.
    let mut pair = vec![a, b];
    pump(&mut pair, Duration::from_secs(10));
    let a = pair.remove(0);
    // b is now gone: a sends into the void.
    let mut solo = vec![a];
    let seq = solo[0]
        .send_reliable(A2, vec![0; 300], Duration::from_secs(10))
        .unwrap();
    // Drive only `a` long enough for all retries to burn out.
    pump(&mut solo, Duration::from_secs(200));
    let events = solo[0].take_events();
    assert!(
        events.contains(&MeshEvent::ReliableFailed { dst: A2, seq }),
        "events: {events:?}"
    );
    assert_eq!(solo[0].stats().reliable_aborted, 1);
    assert!(solo[0].stats().reliable_retransmits > 0);
    drop(pair);
}

#[test]
fn multi_hop_route_learned_and_used() {
    // Chain A1 - A2 - A3 with A1 and A3 out of range: emulate by only
    // delivering frames between adjacent nodes.
    let mut nodes = [node(A1), node(A2), node(A3)];
    let mut now = Duration::ZERO;
    for n in nodes.iter_mut() {
        start(n, now);
    }
    let until = Duration::from_secs(70);
    let adjacent = |i: usize, j: usize| i.abs_diff(j) == 1;
    while now <= until {
        let mut progressed = false;
        for i in 0..nodes.len() {
            if nodes[i].next_wake().is_none_or(|w| w > now) {
                continue;
            }
            progressed = true;
            let mut requests = timer(&mut nodes[i], now);
            while let Some(req) = requests.pop() {
                match req {
                    RadioRequest::StartCad => {
                        requests.extend(cad_done(&mut nodes[i], false, now));
                    }
                    RadioRequest::Transmit(frame) => {
                        for (j, node) in nodes.iter_mut().enumerate() {
                            if j != i && adjacent(i, j) {
                                let _ = frame_in(node, &frame, now);
                            }
                        }
                        requests.extend(tx_done(&mut nodes[i], now));
                    }
                }
            }
        }
        if !progressed {
            let next = nodes
                .iter()
                .filter_map(NodeProtocol::next_wake)
                .min()
                .unwrap_or(until + Duration::from_secs(1));
            now = next.max(now + Duration::from_millis(1));
        }
        // Once A1 knows a route to A3, send through the mesh.
        if nodes[0].routing_table().next_hop(A3) == Some(A2)
            && nodes[0].stats().data_originated == 0
        {
            nodes[0].send_datagram(A3, b"relay".to_vec(), now).unwrap();
        }
    }
    assert_eq!(nodes[0].routing_table().next_hop(A3), Some(A2));
    assert_eq!(nodes[0].routing_table().route(A3).unwrap().metric, 2);
    let events = nodes[2].take_events();
    assert!(
        events.contains(&MeshEvent::Datagram {
            src: A1,
            payload: b"relay".to_vec()
        }),
        "A3 events: {events:?}"
    );
    assert_eq!(nodes[1].stats().forwarded, 1);
}

#[test]
fn ttl_expiry_drops_packet() {
    let mut n = node(A2);
    start(&mut n, Duration::ZERO);
    // Teach A2 routes so forwarding is possible.
    let hello = codec::encode(&Packet::Hello {
        src: A3,
        id: 0,
        role: 0,
        entries: vec![],
    })
    .unwrap();
    let _ = frame_in(&mut n, &hello, Duration::ZERO);
    // A data packet for A3 via us with TTL 1: must die here.
    let data = codec::encode(&Packet::Data {
        dst: A3,
        src: A1,
        id: 0,
        fwd: Forwarding { via: A2, ttl: 1 },
        payload: vec![1],
    })
    .unwrap();
    let _ = frame_in(&mut n, &data, Duration::ZERO);
    assert_eq!(n.stats().ttl_expired, 1);
    assert_eq!(n.stats().forwarded, 0);
}

#[test]
fn forward_without_route_is_counted() {
    let mut n = node(A2);
    start(&mut n, Duration::ZERO);
    let data = codec::encode(&Packet::Data {
        dst: A3,
        src: A1,
        id: 0,
        fwd: Forwarding { via: A2, ttl: 5 },
        payload: vec![1],
    })
    .unwrap();
    let _ = frame_in(&mut n, &data, Duration::ZERO);
    assert_eq!(n.stats().no_route_drops, 1);
}

#[test]
fn packet_not_via_us_is_ignored() {
    let mut n = node(A2);
    start(&mut n, Duration::ZERO);
    let data = codec::encode(&Packet::Data {
        dst: A3,
        src: A1,
        id: 0,
        fwd: Forwarding { via: A3, ttl: 5 },
        payload: vec![1],
    })
    .unwrap();
    let _ = frame_in(&mut n, &data, Duration::ZERO);
    assert_eq!(n.stats().forwarded, 0);
    assert_eq!(n.stats().no_route_drops, 0);
    assert!(n.take_events().is_empty());
}

#[test]
fn garbage_frame_counted_as_decode_error() {
    let mut n = node(A1);
    start(&mut n, Duration::ZERO);
    let _ = frame_in(&mut n, &[0xFF, 0x01], Duration::ZERO);
    assert_eq!(n.stats().decode_errors, 1);
}

#[test]
fn frame_with_own_source_address_flags_a_conflict() {
    let mut n = node(A1);
    start(&mut n, Duration::ZERO);
    let hello = codec::encode(&Packet::Hello {
        src: A1,
        id: 0,
        role: 0,
        entries: vec![],
    })
    .unwrap();
    let _ = frame_in(&mut n, &hello, Duration::ZERO);
    // Not processed as routing input...
    assert_eq!(n.stats().hellos_received, 0);
    assert!(n.routing_table().is_empty());
    // ...but surfaced as a duplicate-address indicator.
    assert_eq!(n.stats().address_conflicts, 1);
    assert!(n.take_events().contains(&MeshEvent::AddressConflict {
        kind: PacketKind::Hello
    }));
}

#[test]
fn queue_refusals_are_counted_as_backpressure() {
    let mut n = MeshNode::new(
        MeshConfig::builder(A1)
            .region(Region::Unlimited)
            .tx_queue_capacity(1)
            .hello_interval(Duration::from_secs(1000))
            .build(),
    );
    start(&mut n, Duration::ZERO);
    // First broadcast datagram fills the single-slot queue.
    assert!(n
        .send_datagram(Address::BROADCAST, b"one".to_vec(), Duration::ZERO)
        .is_ok());
    assert_eq!(n.stats().queue_refusals, 0);
    // Equal-priority traffic cannot evict: refused and counted.
    assert_eq!(
        n.send_datagram(Address::BROADCAST, b"two".to_vec(), Duration::ZERO),
        Err(SendError::QueueFull)
    );
    assert_eq!(
        n.send_datagram(Address::BROADCAST, b"three".to_vec(), Duration::ZERO),
        Err(SendError::QueueFull)
    );
    assert_eq!(n.stats().queue_refusals, 2);
    assert_eq!(n.stats().data_originated, 1);
}

#[test]
fn routes_expire_and_generate_event() {
    let mut n = MeshNode::new(
        MeshConfig::builder(A1)
            .region(Region::Unlimited)
            .route_timeout(Duration::from_secs(60))
            .hello_interval(Duration::from_secs(1000))
            .build(),
    );
    start(&mut n, Duration::ZERO);
    let hello = codec::encode(&Packet::Hello {
        src: A2,
        id: 0,
        role: 0,
        entries: vec![],
    })
    .unwrap();
    let _ = frame_in(&mut n, &hello, Duration::from_secs(1));
    assert!(n.routing_table().next_hop(A2).is_some());
    // The wake should include the route expiry at t=61.
    let wake = n.next_wake().unwrap();
    assert!(wake <= Duration::from_secs(61));
    let _ = timer(&mut n, Duration::from_secs(61));
    assert!(n.routing_table().next_hop(A2).is_none());
    assert!(n.take_events().contains(&MeshEvent::RoutesExpired {
        destinations: vec![A2]
    }));
}

#[test]
fn next_wake_immediate_when_traffic_pending() {
    let mut nodes = vec![node(A1), node(A2)];
    pump(&mut nodes, Duration::from_secs(10));
    let now = Duration::from_secs(10);
    nodes[0].send_datagram(A2, vec![1], now).unwrap();
    assert_eq!(nodes[0].next_wake(), Some(Duration::ZERO));
}

#[test]
fn stalled_inbound_transfer_requests_lost_fragments() {
    let mut b = node(A2);
    start(&mut b, Duration::ZERO);
    // B learns a route back to A1.
    let hello = codec::encode(&Packet::Hello {
        src: A1,
        id: 0,
        role: 0,
        entries: vec![],
    })
    .unwrap();
    let _ = frame_in(&mut b, &hello, Duration::ZERO);
    // A 3-fragment transfer opens and fragment 0 arrives...
    let fwd = Forwarding { via: A2, ttl: 5 };
    let sync = codec::encode(&Packet::Sync {
        dst: A2,
        src: A1,
        id: 1,
        fwd,
        seq: 0,
        frag_count: 3,
        total_len: 30,
    })
    .unwrap();
    let _ = frame_in(&mut b, &sync, Duration::from_secs(1));
    let frag = codec::encode(&Packet::Frag {
        dst: A2,
        src: A1,
        id: 2,
        fwd,
        seq: 0,
        index: 0,
        data: vec![7; 10],
    })
    .unwrap();
    let _ = frame_in(&mut b, &frag, Duration::from_secs(2));
    // ...then the sender goes quiet. After the reliable timeout the
    // node must queue a Lost request listing fragments 1 and 2.
    let stall_at = Duration::from_secs(2) + b.config().reliable_timeout;
    assert!(b.next_wake().unwrap() <= stall_at);
    let mut reqs = timer(&mut b, stall_at);
    // Drain the queue through the MAC to observe the frame.
    let mut lost_seen = false;
    for _ in 0..10 {
        match reqs.pop() {
            Some(RadioRequest::StartCad) => {
                reqs.extend(cad_done(&mut b, false, stall_at));
            }
            Some(RadioRequest::Transmit(frame)) => {
                if let Ok(Packet::Lost { missing, .. }) = codec::decode(&frame) {
                    assert_eq!(missing, vec![1, 2]);
                    lost_seen = true;
                }
                reqs.extend(tx_done(&mut b, stall_at));
            }
            None => {
                reqs.extend(timer(&mut b, stall_at + Duration::from_millis(1)));
                if reqs.is_empty() {
                    break;
                }
            }
        }
    }
    assert!(lost_seen, "no Lost packet was transmitted");
}

#[test]
fn aloha_mode_sends_without_cad() {
    let mut nodes = vec![
        MeshNode::new(
            MeshConfig::builder(A1)
                .region(Region::Unlimited)
                .hello_interval(Duration::from_secs(30))
                .csma(false)
                .build(),
        ),
        MeshNode::new(
            MeshConfig::builder(A2)
                .region(Region::Unlimited)
                .hello_interval(Duration::from_secs(30))
                .csma(false)
                .build(),
        ),
    ];
    pump(&mut nodes, Duration::from_secs(10));
    // Routes still form: hellos went straight to the air.
    assert_eq!(nodes[0].routing_table().next_hop(A2), Some(A2));
    let now = Duration::from_secs(10);
    nodes[0].send_datagram(A2, b"aloha".to_vec(), now).unwrap();
    pump(&mut nodes, Duration::from_secs(12));
    assert!(nodes[1].take_events().contains(&MeshEvent::Datagram {
        src: A1,
        payload: b"aloha".to_vec()
    }));
}

#[test]
fn jitterless_hellos_fire_on_exact_schedule() {
    let mut n = MeshNode::new(
        MeshConfig::builder(A1)
            .region(Region::Unlimited)
            .hello_interval(Duration::from_secs(30))
            .hello_jitter(false)
            .build(),
    );
    start(&mut n, Duration::ZERO);
    // First hello exactly 1 s after boot, then every 30 s sharp.
    assert_eq!(n.next_wake(), Some(Duration::from_secs(1)));
    let reqs = timer(&mut n, Duration::from_secs(1));
    assert_eq!(reqs, vec![RadioRequest::StartCad]);
    let tx = cad_done(&mut n, false, Duration::from_secs(1));
    assert!(matches!(tx.as_slice(), [RadioRequest::Transmit(_)]));
    let _ = tx_done(&mut n, Duration::from_millis(1100));
    assert_eq!(n.next_wake(), Some(Duration::from_secs(31)));
}

#[test]
fn oversized_routing_table_is_truncated_in_hello() {
    let mut n = MeshNode::new(
        MeshConfig::builder(A1)
            .region(Region::Unlimited)
            .hello_jitter(false)
            .build(),
    );
    start(&mut n, Duration::ZERO);
    // Teach the node more routes than a single hello frame can carry
    // (the 255-byte PHY limit fits 61 entries).
    for neighbour in 0..5u16 {
        let entries: Vec<RouteEntry> = (0..20)
            .map(|k| RouteEntry {
                address: Address::new(1000 + neighbour * 100 + k),
                metric: 1,
                role: 0,
            })
            .collect();
        let hello = codec::encode(&Packet::Hello {
            src: Address::new(100 + neighbour),
            id: 0,
            role: 0,
            entries,
        })
        .unwrap();
        let _ = frame_in(&mut n, &hello, Duration::ZERO);
    }
    assert!(n.routing_table().len() > codec::MAX_HELLO_ENTRIES);
    // Fire the hello and capture the frame.
    let mut reqs = timer(&mut n, Duration::from_secs(1));
    assert_eq!(reqs, vec![RadioRequest::StartCad]);
    reqs = cad_done(&mut n, false, Duration::from_secs(1));
    let RadioRequest::Transmit(frame) = &reqs[0] else {
        panic!("expected a transmission");
    };
    assert!(frame.len() <= codec::MAX_FRAME_LEN);
    match codec::decode(frame).unwrap() {
        Packet::Hello { entries, .. } => {
            assert_eq!(entries.len(), codec::MAX_HELLO_ENTRIES);
        }
        other => panic!("expected hello, got {other:?}"),
    }
}

#[test]
fn cad_exhaustion_drops_frame_with_event() {
    let mut n = MeshNode::new(
        MeshConfig::builder(A1)
            .region(Region::Unlimited)
            .max_cad_retries(2)
            .backoff_slot(Duration::from_millis(10))
            .hello_jitter(false)
            .build(),
    );
    start(&mut n, Duration::ZERO);
    // Fire the first hello into a permanently busy channel.
    let mut now = Duration::from_secs(1);
    let mut reqs = timer(&mut n, now);
    assert_eq!(reqs, vec![RadioRequest::StartCad]);
    for _ in 0..4 {
        reqs = cad_done(&mut n, true, now);
        assert!(reqs.is_empty());
        if n.tx_queue_len() == 0 {
            break; // frame dropped after exhausting CAD retries
        }
        // Wait out the backoff and CAD again.
        if let Some(wake) = n.next_wake() {
            now = now.max(wake);
        }
        reqs = timer(&mut n, now);
        assert_eq!(reqs, vec![RadioRequest::StartCad]);
    }
    let events = n.take_events();
    assert!(
        events.iter().any(|e| matches!(
            e,
            MeshEvent::FrameDropped {
                kind: PacketKind::Hello
            }
        )),
        "events: {events:?}"
    );
    assert_eq!(n.stats().cad_exhausted, 1);
    assert_eq!(n.tx_queue_len(), 0);
}

#[test]
fn zero_fragment_sync_is_rejected() {
    let mut n = node(A2);
    start(&mut n, Duration::ZERO);
    let hello = codec::encode(&Packet::Hello {
        src: A1,
        id: 0,
        role: 0,
        entries: vec![],
    })
    .unwrap();
    let _ = frame_in(&mut n, &hello, Duration::ZERO);
    let sync = codec::encode(&Packet::Sync {
        dst: A2,
        src: A1,
        id: 1,
        fwd: Forwarding { via: A2, ttl: 5 },
        seq: 0,
        frag_count: 0,
        total_len: 0,
    })
    .unwrap();
    let _ = frame_in(&mut n, &sync, Duration::ZERO);
    assert_eq!(n.stats().decode_errors, 1);
    assert!(n.inbound_transfers().is_empty());
}

#[test]
fn us915_dwell_limit_drops_slow_frames() {
    use lora_phy::modulation::{Bandwidth, CodingRate, LoRaModulation, SpreadingFactor};
    // SF12: a 200-byte frame lasts ~7 s, far over the 400 ms dwell.
    let mut n = MeshNode::new(
        MeshConfig::builder(A1)
            .region(Region::Us915)
            .modulation(LoRaModulation::new(
                SpreadingFactor::Sf12,
                Bandwidth::Khz125,
                CodingRate::Cr4_5,
            ))
            .hello_jitter(false)
            .build(),
    );
    start(&mut n, Duration::ZERO);
    let hello = codec::encode(&Packet::Hello {
        src: A2,
        id: 0,
        role: 0,
        entries: vec![],
    })
    .unwrap();
    let _ = frame_in(&mut n, &hello, Duration::ZERO);
    n.send_datagram(A2, vec![0; 200], Duration::ZERO).unwrap();
    // Drain: hello (small, allowed) then the oversized datagram.
    let mut now = Duration::from_secs(1);
    let mut dropped = false;
    for _ in 0..10 {
        let reqs = timer(&mut n, now);
        for req in reqs {
            match req {
                RadioRequest::StartCad => {
                    let _ = cad_done(&mut n, false, now);
                }
                RadioRequest::Transmit(_) => {
                    let _ = tx_done(&mut n, now + Duration::from_millis(300));
                }
            }
        }
        if n.take_events().iter().any(|e| {
            matches!(
                e,
                MeshEvent::FrameDropped {
                    kind: PacketKind::Data
                }
            )
        }) {
            dropped = true;
            break;
        }
        now += Duration::from_secs(1);
    }
    assert!(
        dropped,
        "oversized SF12 frame must be dropped by the dwell limit"
    );
}

#[test]
fn ack_for_unknown_transfer_is_ignored() {
    let mut n = node(A1);
    start(&mut n, Duration::ZERO);
    let ack = codec::encode(&Packet::Ack {
        dst: A1,
        src: A2,
        id: 0,
        fwd: Forwarding { via: A1, ttl: 5 },
        seq: 9,
        index: 0,
    })
    .unwrap();
    let _ = frame_in(&mut n, &ack, Duration::ZERO);
    assert!(n.take_events().is_empty());
    assert!(n.outbound_transfers().is_empty());
}
