//! Baseline LoRa network protocols for comparison against LoRaMesher.
//!
//! The demo paper motivates mesh networking against the standard LoRaWAN
//! deployment model, so the evaluation needs the non-mesh reference
//! point, implemented against the same sans-IO
//! [`loramesher::driver::NodeProtocol`] interface and reusing the same
//! CSMA MAC so every measured difference comes from the protocol design
//! and not the plumbing:
//!
//! * [`star`] — single-gateway star (LoRaWAN-style): end nodes talk
//!   directly to a gateway; nodes out of gateway range are simply
//!   unreachable.
//!
//! The managed-flooding baseline that used to live here graduated into
//! a first-class stack: see [`loramesher::flood`] and the
//! [`loramesher::protocol::Protocol`] abstraction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod star;

pub use star::{StarConfig, StarEvent, StarNode};
