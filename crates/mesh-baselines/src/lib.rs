//! Baseline LoRa network protocols for comparison against LoRaMesher.
//!
//! The demo paper motivates mesh networking against the standard LoRaWAN
//! deployment model; the evaluation additionally needs a mesh alternative
//! to show what the routing protocol buys. This crate provides both,
//! implemented against the same sans-IO [`loramesher::driver::NodeProtocol`]
//! interface and reusing the same CSMA MAC, so every difference measured
//! in the experiments comes from the protocol design and not the plumbing:
//!
//! * [`flooding`] — managed flooding (Meshtastic-style): no routing state;
//!   every node rebroadcasts unseen packets with a TTL, after a random
//!   jitter to decorrelate relays.
//! * [`star`] — single-gateway star (LoRaWAN-style): end nodes talk
//!   directly to a gateway; nodes out of gateway range are simply
//!   unreachable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flooding;
pub mod star;

pub use flooding::{FloodingConfig, FloodingEvent, FloodingNode};
pub use star::{StarConfig, StarEvent, StarNode};
