//! Single-gateway star — the LoRaWAN deployment model.
//!
//! End nodes transmit directly to a designated gateway; the gateway can
//! address any end node directly. There is no relaying whatsoever, so a
//! node outside the gateway's radio range is simply unreachable — exactly
//! the limitation the LoRaMesher paper's introduction argues against, and
//! the property experiment E5 quantifies.
//!
//! Frames reuse the LoRaMesher `Data` packet with TTL 1 (never relayed),
//! keeping airtime comparable across protocols.

use std::collections::VecDeque;
use std::time::Duration;

use lora_phy::link::SignalQuality;
use lora_phy::modulation::LoRaModulation;
use lora_phy::region::{DutyCycleTracker, Region};

use loramesher::addr::Address;
use loramesher::codec;
use loramesher::driver::{NodeProtocol, RadioIo};
use loramesher::error::SendError;
use loramesher::mac::{Mac, MacAction};
use loramesher::packet::{Forwarding, Packet};
use loramesher::queue::TxQueue;
use loramesher::rng::ProtocolRng;

/// Configuration of a [`StarNode`].
#[derive(Clone, Debug)]
pub struct StarConfig {
    /// This node's address.
    pub address: Address,
    /// The gateway every end node talks to.
    pub gateway: Address,
    /// The radio profile.
    pub modulation: LoRaModulation,
    /// Regulatory region for the duty cycle.
    pub region: Region,
    /// Transmit queue capacity.
    pub tx_queue_capacity: usize,
    /// CSMA backoff slot.
    pub backoff_slot: Duration,
    /// Maximum CSMA backoff exponent.
    pub max_backoff_exponent: u32,
    /// CAD retries before dropping a frame.
    pub max_cad_retries: u32,
    /// Randomness seed.
    pub seed: u64,
}

impl StarConfig {
    /// A configuration with defaults matching the mesh experiments.
    #[must_use]
    pub fn new(address: Address, gateway: Address) -> Self {
        StarConfig {
            address,
            gateway,
            modulation: LoRaModulation::default(),
            region: Region::Eu868,
            tx_queue_capacity: 32,
            backoff_slot: Duration::from_millis(100),
            max_backoff_exponent: 6,
            max_cad_retries: 16,
            seed: u64::from(address.value()),
        }
    }
}

/// Application events reported by a star node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StarEvent {
    /// A packet addressed to this node arrived.
    Received {
        /// Originating node.
        src: Address,
        /// Application payload.
        payload: Vec<u8>,
    },
}

/// A node in a single-gateway star network.
#[derive(Debug)]
pub struct StarNode {
    config: StarConfig,
    mac: Mac,
    txq: TxQueue,
    rng: ProtocolRng,
    events: VecDeque<StarEvent>,
    next_id: u8,
    started: bool,
    /// Frames transmitted.
    pub frames_sent: u64,
    /// Total airtime transmitted.
    pub airtime: Duration,
}

impl StarNode {
    /// Creates a node from its configuration.
    #[must_use]
    pub fn new(config: StarConfig) -> Self {
        let duty = config
            .region
            .sub_band_for(config.region.default_frequency_hz())
            .map_or_else(DutyCycleTracker::unlimited, |b| {
                DutyCycleTracker::new(b.duty_cycle, Duration::from_secs(3600))
            });
        let mac = Mac::new(
            duty,
            config.backoff_slot,
            config.max_backoff_exponent,
            config.max_cad_retries,
        );
        StarNode {
            mac,
            txq: TxQueue::new(config.tx_queue_capacity),
            rng: ProtocolRng::new(config.seed),
            events: VecDeque::new(),
            next_id: 0,
            started: false,
            frames_sent: 0,
            airtime: Duration::ZERO,
            config,
        }
    }

    /// This node's address.
    #[must_use]
    pub fn address(&self) -> Address {
        self.config.address
    }

    /// Whether this node is the gateway.
    #[must_use]
    pub fn is_gateway(&self) -> bool {
        self.config.address == self.config.gateway
    }

    /// Drains pending application events.
    pub fn take_events(&mut self) -> Vec<StarEvent> {
        self.events.drain(..).collect()
    }

    /// Submits a datagram.
    ///
    /// End nodes may only address the gateway (uplink); the gateway may
    /// address any node (downlink).
    ///
    /// # Errors
    ///
    /// * [`SendError::EmptyPayload`] / [`SendError::PayloadTooLarge`] /
    ///   [`SendError::QueueFull`] — as for the mesh.
    /// * [`SendError::NoRoute`] — an end node tried to reach something
    ///   other than the gateway (stars have no peer-to-peer path).
    pub fn send(&mut self, dst: Address, payload: Vec<u8>) -> Result<u8, SendError> {
        if payload.is_empty() {
            return Err(SendError::EmptyPayload);
        }
        if payload.len() > codec::MAX_DATA_PAYLOAD {
            return Err(SendError::PayloadTooLarge {
                len: payload.len(),
                max: codec::MAX_DATA_PAYLOAD,
            });
        }
        if !self.is_gateway() && dst != self.config.gateway {
            return Err(SendError::NoRoute(dst));
        }
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        let packet = Packet::Data {
            dst,
            src: self.config.address,
            id,
            fwd: Forwarding { via: dst, ttl: 1 },
            payload,
        };
        if !self.txq.push(packet) {
            return Err(SendError::QueueFull);
        }
        Ok(id)
    }
}

impl NodeProtocol for StarNode {
    fn on_start(&mut self, _io: &mut RadioIo) {
        self.started = true;
    }

    fn on_timer(&mut self, io: &mut RadioIo) {
        if !self.txq.is_empty() {
            if let MacAction::StartCad = self.mac.kick(io.now()) {
                io.start_cad();
            }
        }
    }

    fn on_frame(&mut self, frame: &[u8], _quality: SignalQuality, _io: &mut RadioIo) {
        let Ok(Packet::Data {
            dst, src, payload, ..
        }) = codec::decode(frame)
        else {
            return;
        };
        if dst == self.config.address && src != self.config.address {
            self.events.push_back(StarEvent::Received { src, payload });
        }
    }

    fn on_tx_done(&mut self, _io: &mut RadioIo) {
        self.mac.on_tx_done();
    }

    fn on_cad_done(&mut self, busy: bool, io: &mut RadioIo) {
        let now = io.now();
        let Some(front) = self.txq.peek() else {
            return;
        };
        let airtime = self
            .config
            .modulation
            .time_on_air(codec::encoded_len(front));
        match self.mac.on_cad_done(busy, airtime, now, &mut self.rng) {
            MacAction::Transmit => {
                // Peeked non-empty above, but stay panic-free anyway.
                let Some(packet) = self.txq.pop() else {
                    return;
                };
                match codec::encode(&packet) {
                    Ok(frame) => {
                        self.frames_sent += 1;
                        self.airtime += airtime;
                        io.transmit(frame);
                    }
                    Err(_) => {
                        self.mac.on_tx_done();
                    }
                }
            }
            MacAction::DropFrame => {
                let _ = self.txq.pop();
            }
            MacAction::StartCad => io.start_cad(),
            MacAction::None => {}
        }
    }

    fn next_wake(&self) -> Option<Duration> {
        if !self.started {
            return None;
        }
        if self.mac.is_ready() && !self.txq.is_empty() {
            return Some(Duration::ZERO);
        }
        self.mac.next_wake()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loramesher::driver::RadioRequest;
    use std::sync::Arc;

    const GW: Address = Address::new(100);
    const N1: Address = Address::new(1);
    const N2: Address = Address::new(2);

    fn node(addr: Address) -> StarNode {
        let mut cfg = StarConfig::new(addr, GW);
        cfg.region = Region::Unlimited;
        StarNode::new(cfg)
    }

    fn start(n: &mut StarNode) {
        let mut io = RadioIo::new(Duration::ZERO);
        n.on_start(&mut io);
        assert!(io.take_requests().is_empty());
    }

    fn frame_in(n: &mut StarNode, frame: &[u8], now: Duration) {
        let mut io = RadioIo::new(now);
        n.on_frame(frame, SignalQuality::ideal(), &mut io);
    }

    fn drain(n: &mut StarNode, now: Duration) -> Vec<Arc<[u8]>> {
        let mut frames = Vec::new();
        let mut io = RadioIo::new(now);
        n.on_timer(&mut io);
        let mut requests = io.take_requests();
        while let Some(req) = requests.pop() {
            let mut io = RadioIo::new(now);
            match req {
                RadioRequest::StartCad => n.on_cad_done(false, &mut io),
                RadioRequest::Transmit(f) => {
                    frames.push(f);
                    n.on_tx_done(&mut io);
                }
            }
            requests.extend(io.take_requests());
        }
        frames
    }

    #[test]
    fn uplink_reaches_gateway() {
        let mut n = node(N1);
        let mut gw = node(GW);
        start(&mut n);
        start(&mut gw);
        n.send(GW, b"up".to_vec()).unwrap();
        let frames = drain(&mut n, Duration::ZERO);
        assert_eq!(frames.len(), 1);
        frame_in(&mut gw, &frames[0], Duration::ZERO);
        assert_eq!(
            gw.take_events(),
            vec![StarEvent::Received {
                src: N1,
                payload: b"up".to_vec()
            }]
        );
    }

    #[test]
    fn downlink_reaches_end_node() {
        let mut gw = node(GW);
        let mut n = node(N2);
        start(&mut gw);
        start(&mut n);
        assert!(gw.is_gateway());
        gw.send(N2, b"down".to_vec()).unwrap();
        let frames = drain(&mut gw, Duration::ZERO);
        frame_in(&mut n, &frames[0], Duration::ZERO);
        assert_eq!(n.take_events().len(), 1);
    }

    #[test]
    fn end_node_cannot_address_peer() {
        let mut n = node(N1);
        start(&mut n);
        assert_eq!(n.send(N2, b"p2p".to_vec()), Err(SendError::NoRoute(N2)));
    }

    #[test]
    fn frames_are_never_relayed() {
        // A frame for someone else passes through a node untouched.
        let mut n = node(N1);
        start(&mut n);
        let frame = codec::encode(&Packet::Data {
            dst: N2,
            src: GW,
            id: 0,
            fwd: Forwarding { via: N2, ttl: 1 },
            payload: vec![9],
        })
        .unwrap();
        frame_in(&mut n, &frame, Duration::ZERO);
        assert!(n.take_events().is_empty());
        assert!(drain(&mut n, Duration::from_secs(1)).is_empty());
    }

    #[test]
    fn send_validations() {
        let mut n = node(N1);
        start(&mut n);
        assert_eq!(n.send(GW, vec![]), Err(SendError::EmptyPayload));
        assert!(matches!(
            n.send(GW, vec![0; 4000]),
            Err(SendError::PayloadTooLarge { .. })
        ));
    }
}
