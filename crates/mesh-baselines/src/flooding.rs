//! Managed flooding — the canonical routing-free LoRa mesh design.
//!
//! Each packet carries its originator, an id and a TTL. A node that hears
//! a packet it has not seen before (a) delivers it if it is the
//! destination or the packet is a broadcast, and (b) schedules a
//! rebroadcast with the TTL decremented, after a random jitter that
//! decorrelates simultaneous relays. Duplicate suppression uses a bounded
//! `(src, id)` cache. There is no routing state at all — which is the
//! point of comparing it against LoRaMesher: flooding reaches everything
//! reachable but pays for it in airtime, and the experiments quantify
//! that trade.
//!
//! The wire format reuses the LoRaMesher `Data` packet (with `via` set to
//! broadcast, since there is no designated next hop), so frame sizes and
//! airtime are identical between the protocols.

use std::collections::{BTreeSet, VecDeque};
use std::time::Duration;

use lora_phy::link::SignalQuality;
use lora_phy::modulation::LoRaModulation;
use lora_phy::region::{DutyCycleTracker, Region};

use loramesher::addr::Address;
use loramesher::codec;
use loramesher::driver::{NodeProtocol, RadioIo};
use loramesher::error::SendError;
use loramesher::mac::{Mac, MacAction};
use loramesher::packet::{Forwarding, Packet};
use loramesher::queue::TxQueue;
use loramesher::rng::ProtocolRng;

/// Configuration of a [`FloodingNode`].
#[derive(Clone, Debug)]
pub struct FloodingConfig {
    /// This node's address.
    pub address: Address,
    /// The radio profile (must match the network's).
    pub modulation: LoRaModulation,
    /// Regulatory region for the duty cycle.
    pub region: Region,
    /// Initial TTL of originated packets (= maximum flood radius).
    pub ttl: u8,
    /// Upper bound of the random rebroadcast jitter.
    pub rebroadcast_jitter: Duration,
    /// Duplicate-suppression cache size.
    pub seen_cache: usize,
    /// Transmit queue capacity.
    pub tx_queue_capacity: usize,
    /// CSMA backoff slot.
    pub backoff_slot: Duration,
    /// Maximum CSMA backoff exponent.
    pub max_backoff_exponent: u32,
    /// CAD retries before dropping a frame.
    pub max_cad_retries: u32,
    /// Randomness seed (defaults to the address).
    pub seed: u64,
}

impl FloodingConfig {
    /// A configuration with LoRaMesher-compatible defaults.
    #[must_use]
    pub fn new(address: Address) -> Self {
        FloodingConfig {
            address,
            modulation: LoRaModulation::default(),
            region: Region::Eu868,
            ttl: 7,
            rebroadcast_jitter: Duration::from_millis(500),
            seen_cache: 128,
            tx_queue_capacity: 32,
            backoff_slot: Duration::from_millis(100),
            max_backoff_exponent: 6,
            max_cad_retries: 16,
            seed: u64::from(address.value()),
        }
    }
}

/// Application events reported by a flooding node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FloodingEvent {
    /// A packet addressed to this node (or broadcast) arrived.
    Received {
        /// Originating node.
        src: Address,
        /// Whether it was a broadcast.
        broadcast: bool,
        /// Application payload.
        payload: Vec<u8>,
    },
}

/// A pending (jittered) rebroadcast.
#[derive(Debug)]
struct PendingRelay {
    at: Duration,
    packet: Packet,
}

/// A managed-flooding node.
#[derive(Debug)]
pub struct FloodingNode {
    config: FloodingConfig,
    mac: Mac,
    txq: TxQueue,
    rng: ProtocolRng,
    /// Duplicate-suppression cache. A `BTreeSet` (meshlint rule D1):
    /// iteration order never leaks hasher state into traces.
    seen: BTreeSet<(Address, u8)>,
    seen_order: VecDeque<(Address, u8)>,
    pending: Vec<PendingRelay>,
    events: VecDeque<FloodingEvent>,
    next_id: u8,
    started: bool,
    /// Packets this node has rebroadcast for others.
    pub relayed: u64,
    /// Duplicates suppressed by the seen-cache.
    pub duplicates_suppressed: u64,
    /// Frames transmitted (originated + relayed + retries).
    pub frames_sent: u64,
    /// Total airtime transmitted.
    pub airtime: Duration,
}

impl FloodingNode {
    /// Creates a node from its configuration.
    #[must_use]
    pub fn new(config: FloodingConfig) -> Self {
        let duty = config
            .region
            .sub_band_for(config.region.default_frequency_hz())
            .map_or_else(DutyCycleTracker::unlimited, |b| {
                DutyCycleTracker::new(b.duty_cycle, Duration::from_secs(3600))
            });
        let mac = Mac::new(
            duty,
            config.backoff_slot,
            config.max_backoff_exponent,
            config.max_cad_retries,
        );
        FloodingNode {
            mac,
            txq: TxQueue::new(config.tx_queue_capacity),
            rng: ProtocolRng::new(config.seed),
            seen: BTreeSet::new(),
            seen_order: VecDeque::new(),
            pending: Vec::new(),
            events: VecDeque::new(),
            next_id: 0,
            started: false,
            relayed: 0,
            duplicates_suppressed: 0,
            frames_sent: 0,
            airtime: Duration::ZERO,
            config,
        }
    }

    /// This node's address.
    #[must_use]
    pub fn address(&self) -> Address {
        self.config.address
    }

    /// Drains pending application events.
    pub fn take_events(&mut self) -> Vec<FloodingEvent> {
        self.events.drain(..).collect()
    }

    /// Submits a datagram to flood toward `dst` (or broadcast).
    ///
    /// # Errors
    ///
    /// * [`SendError::EmptyPayload`] — nothing to send.
    /// * [`SendError::PayloadTooLarge`] — exceeds the single-frame limit.
    /// * [`SendError::QueueFull`] — the transmit queue refused the frame.
    pub fn send(&mut self, dst: Address, payload: Vec<u8>) -> Result<u8, SendError> {
        if payload.is_empty() {
            return Err(SendError::EmptyPayload);
        }
        if payload.len() > codec::MAX_DATA_PAYLOAD {
            return Err(SendError::PayloadTooLarge {
                len: payload.len(),
                max: codec::MAX_DATA_PAYLOAD,
            });
        }
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        let packet = Packet::Data {
            dst,
            src: self.config.address,
            id,
            fwd: Forwarding {
                via: Address::BROADCAST,
                ttl: self.config.ttl,
            },
            payload,
        };
        // Mark our own packet as seen so echoes are not relayed.
        self.remember(self.config.address, id);
        if !self.txq.push(packet) {
            return Err(SendError::QueueFull);
        }
        Ok(id)
    }

    fn remember(&mut self, src: Address, id: u8) -> bool {
        if self.seen.contains(&(src, id)) {
            return false;
        }
        if self.seen_order.len() == self.config.seen_cache {
            if let Some(old) = self.seen_order.pop_front() {
                self.seen.remove(&old);
            }
        }
        self.seen.insert((src, id));
        self.seen_order.push_back((src, id));
        true
    }

    fn kick_mac(&mut self, now: Duration, io: &mut RadioIo) {
        if !self.txq.is_empty() {
            if let MacAction::StartCad = self.mac.kick(now) {
                io.start_cad();
            }
        }
    }
}

impl NodeProtocol for FloodingNode {
    fn on_start(&mut self, _io: &mut RadioIo) {
        self.started = true;
    }

    fn on_timer(&mut self, io: &mut RadioIo) {
        let now = io.now();
        // Move due rebroadcasts into the transmit queue.
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].at <= now {
                let relay = self.pending.swap_remove(i);
                if self.txq.push(relay.packet) {
                    self.relayed += 1;
                }
            } else {
                i += 1;
            }
        }
        self.kick_mac(now, io);
    }

    fn on_frame(&mut self, frame: &[u8], _quality: SignalQuality, io: &mut RadioIo) {
        let now = io.now();
        let Ok(packet) = codec::decode(frame) else {
            return;
        };
        let Packet::Data {
            dst,
            src,
            id,
            fwd,
            payload,
        } = packet
        else {
            return; // flooding only speaks Data
        };
        if src == self.config.address {
            return;
        }
        if !self.remember(src, id) {
            self.duplicates_suppressed += 1;
            return;
        }
        let for_me = dst == self.config.address;
        if for_me || dst.is_broadcast() {
            self.events.push_back(FloodingEvent::Received {
                src,
                broadcast: dst.is_broadcast(),
                payload: payload.clone(),
            });
        }
        // Relay unless we are the final destination or the TTL is spent.
        if !for_me && fwd.ttl > 1 {
            let jitter_us = self
                .rng
                .gen_range(self.config.rebroadcast_jitter.as_micros().max(1) as u64);
            self.pending.push(PendingRelay {
                at: now + Duration::from_micros(jitter_us),
                packet: Packet::Data {
                    dst,
                    src,
                    id,
                    fwd: Forwarding {
                        via: Address::BROADCAST,
                        ttl: fwd.ttl - 1,
                    },
                    payload,
                },
            });
        }
    }

    fn on_tx_done(&mut self, _io: &mut RadioIo) {
        self.mac.on_tx_done();
    }

    fn on_cad_done(&mut self, busy: bool, io: &mut RadioIo) {
        let now = io.now();
        let Some(front) = self.txq.peek() else {
            return;
        };
        let airtime = self
            .config
            .modulation
            .time_on_air(codec::encoded_len(front));
        match self.mac.on_cad_done(busy, airtime, now, &mut self.rng) {
            MacAction::Transmit => {
                // Peeked non-empty above, but stay panic-free anyway.
                let Some(packet) = self.txq.pop() else {
                    return;
                };
                match codec::encode(&packet) {
                    Ok(frame) => {
                        self.frames_sent += 1;
                        self.airtime += airtime;
                        io.transmit(frame);
                    }
                    Err(_) => {
                        self.mac.on_tx_done();
                    }
                }
            }
            MacAction::DropFrame => {
                let _ = self.txq.pop();
            }
            MacAction::StartCad => io.start_cad(),
            MacAction::None => {}
        }
    }

    fn next_wake(&self) -> Option<Duration> {
        if !self.started {
            return None;
        }
        let mut wake: Option<Duration> = None;
        let mut consider = |t: Option<Duration>| {
            if let Some(t) = t {
                wake = Some(wake.map_or(t, |w| w.min(t)));
            }
        };
        if self.mac.is_ready() && !self.txq.is_empty() {
            consider(Some(Duration::ZERO));
        }
        consider(self.mac.next_wake());
        consider(self.pending.iter().map(|p| p.at).min());
        wake
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loramesher::driver::RadioRequest;
    use std::sync::Arc;

    const A1: Address = Address::new(1);
    const A2: Address = Address::new(2);
    const A3: Address = Address::new(3);

    fn node(addr: Address) -> FloodingNode {
        let mut cfg = FloodingConfig::new(addr);
        cfg.region = Region::Unlimited;
        FloodingNode::new(cfg)
    }

    fn start(n: &mut FloodingNode) {
        let mut io = RadioIo::new(Duration::ZERO);
        n.on_start(&mut io);
        assert!(io.take_requests().is_empty());
    }

    fn frame_in(n: &mut FloodingNode, frame: &[u8], now: Duration) {
        let mut io = RadioIo::new(now);
        n.on_frame(frame, SignalQuality::ideal(), &mut io);
    }

    /// Drains one node's radio work, returning transmitted frames.
    fn drain(n: &mut FloodingNode, now: Duration) -> Vec<Arc<[u8]>> {
        let mut frames = Vec::new();
        let mut io = RadioIo::new(now);
        n.on_timer(&mut io);
        let mut requests = io.take_requests();
        let mut guard = 0;
        while let Some(req) = requests.pop() {
            guard += 1;
            assert!(guard < 100, "runaway radio loop");
            let mut io = RadioIo::new(now);
            match req {
                RadioRequest::StartCad => n.on_cad_done(false, &mut io),
                RadioRequest::Transmit(f) => {
                    frames.push(f);
                    n.on_tx_done(&mut io);
                }
            }
            requests.extend(io.take_requests());
        }
        frames
    }

    #[test]
    fn send_validations() {
        let mut n = node(A1);
        start(&mut n);
        assert_eq!(n.send(A2, vec![]), Err(SendError::EmptyPayload));
        assert!(matches!(
            n.send(A2, vec![0; 4000]),
            Err(SendError::PayloadTooLarge { .. })
        ));
        assert!(n.send(A2, vec![1, 2]).is_ok());
    }

    #[test]
    fn originated_packet_is_transmitted() {
        let mut n = node(A1);
        start(&mut n);
        n.send(A2, b"x".to_vec()).unwrap();
        assert_eq!(n.next_wake(), Some(Duration::ZERO));
        let frames = drain(&mut n, Duration::ZERO);
        assert_eq!(frames.len(), 1);
        assert_eq!(n.frames_sent, 1);
    }

    #[test]
    fn destination_delivers_and_does_not_relay() {
        let mut a = node(A1);
        let mut b = node(A2);
        start(&mut a);
        start(&mut b);
        a.send(A2, b"hi".to_vec()).unwrap();
        let frames = drain(&mut a, Duration::ZERO);
        frame_in(&mut b, &frames[0], Duration::ZERO);
        assert_eq!(
            b.take_events(),
            vec![FloodingEvent::Received {
                src: A1,
                broadcast: false,
                payload: b"hi".to_vec()
            }]
        );
        // B was the destination: nothing to relay, no pending work.
        assert!(drain(&mut b, Duration::from_secs(5)).is_empty());
        assert_eq!(b.relayed, 0);
    }

    #[test]
    fn intermediate_node_relays_with_decremented_ttl() {
        let mut a = node(A1);
        let mut b = node(A2);
        start(&mut a);
        start(&mut b);
        a.send(A3, b"fwd".to_vec()).unwrap();
        let frames = drain(&mut a, Duration::ZERO);
        frame_in(&mut b, &frames[0], Duration::ZERO);
        // The relay is jittered: due within the configured bound.
        let relayed = drain(&mut b, Duration::from_secs(1));
        assert_eq!(relayed.len(), 1);
        assert_eq!(b.relayed, 1);
        match codec::decode(&relayed[0]).unwrap() {
            Packet::Data { src, dst, fwd, .. } => {
                assert_eq!(src, A1);
                assert_eq!(dst, A3);
                assert_eq!(fwd.ttl, node(A1).config.ttl - 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        // B did not deliver a packet that was not for it.
        assert!(b.take_events().is_empty());
    }

    #[test]
    fn duplicates_are_suppressed() {
        let mut a = node(A1);
        let mut b = node(A2);
        start(&mut a);
        start(&mut b);
        a.send(A3, b"dup".to_vec()).unwrap();
        let frames = drain(&mut a, Duration::ZERO);
        frame_in(&mut b, &frames[0], Duration::ZERO);
        frame_in(&mut b, &frames[0], Duration::ZERO);
        assert_eq!(b.duplicates_suppressed, 1);
        // Only one relay scheduled.
        assert_eq!(drain(&mut b, Duration::from_secs(1)).len(), 1);
    }

    #[test]
    fn broadcast_is_delivered_and_relayed() {
        let mut a = node(A1);
        let mut b = node(A2);
        start(&mut a);
        start(&mut b);
        a.send(Address::BROADCAST, b"all".to_vec()).unwrap();
        let frames = drain(&mut a, Duration::ZERO);
        frame_in(&mut b, &frames[0], Duration::ZERO);
        assert_eq!(b.take_events().len(), 1);
        assert_eq!(drain(&mut b, Duration::from_secs(1)).len(), 1);
    }

    #[test]
    fn ttl_one_is_not_relayed() {
        let mut a = FloodingNode::new({
            let mut c = FloodingConfig::new(A1);
            c.region = Region::Unlimited;
            c.ttl = 1;
            c
        });
        let mut b = node(A2);
        start(&mut a);
        start(&mut b);
        a.send(A3, b"one hop".to_vec()).unwrap();
        let frames = drain(&mut a, Duration::ZERO);
        frame_in(&mut b, &frames[0], Duration::ZERO);
        assert!(drain(&mut b, Duration::from_secs(2)).is_empty());
        assert_eq!(b.relayed, 0);
    }

    #[test]
    fn seen_cache_is_bounded() {
        let mut n = FloodingNode::new({
            let mut c = FloodingConfig::new(A2);
            c.region = Region::Unlimited;
            c.seen_cache = 4;
            c
        });
        start(&mut n);
        for id in 0..10u8 {
            let frame = codec::encode(&Packet::Data {
                dst: A2,
                src: A1,
                id,
                fwd: Forwarding {
                    via: Address::BROADCAST,
                    ttl: 3,
                },
                payload: vec![id],
            })
            .unwrap();
            frame_in(&mut n, &frame, Duration::ZERO);
        }
        assert_eq!(n.seen.len(), 4);
        assert_eq!(n.take_events().len(), 10);
    }

    #[test]
    fn non_data_packets_ignored() {
        let mut n = node(A2);
        start(&mut n);
        let hello = codec::encode(&Packet::Hello {
            src: A1,
            id: 0,
            role: 0,
            entries: vec![],
        })
        .unwrap();
        frame_in(&mut n, &hello, Duration::ZERO);
        assert!(n.take_events().is_empty());
        assert!(n.next_wake().is_none());
    }
}
