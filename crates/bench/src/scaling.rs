//! The static-grid beacon scenario behind the scaling benchmark.
//!
//! N nodes on a square grid, spaced at 0.8× the radio range (so each
//! node hears only its 4-neighborhood — the regime the link cache's
//! audible-neighbor culling targets), every node broadcasting a short
//! beacon on a fixed period with a deterministic per-node phase. The
//! scenario is pure PHY (no routing) so the measurement isolates the
//! simulator hot path: `start_tx` fan-out, receiver locking and
//! interference seeding.
//!
//! Shared by `src/bin/bench_scaling.rs` (the `BENCH_PR4.json` scaling
//! run) and `benches/micro.rs` (cached-vs-uncached hot-path benches).

use std::sync::Arc;
use std::time::Duration;

use lora_phy::link::SignalQuality;
use lora_phy::propagation::Position;
use radio_sim::firmware::{Context, Firmware};
use radio_sim::metrics::Metrics;
use radio_sim::mobility::Mobility;
use radio_sim::topology;
use radio_sim::{SimConfig, Simulator};

/// Beacon period of every node.
pub const BEACON_INTERVAL: Duration = Duration::from_secs(3);
/// Beacon payload length in bytes.
pub const BEACON_LEN: usize = 16;
/// Every `MOBILE_STRIDE`-th node moves in the mobile variant.
pub const MOBILE_STRIDE: usize = 3;

/// Fires a fixed-length broadcast every [`BEACON_INTERVAL`], phase-offset
/// per node; counts the beacons it hears.
pub struct Beacon {
    next: Duration,
    /// The beacon frame, built once: each transmission clones the `Arc`
    /// (a refcount bump), keeping the steady-state loop allocation-free
    /// — see `tests/alloc_regression.rs`.
    frame: Arc<[u8]>,
    /// Frames this node decoded.
    pub heard: u64,
}

impl Beacon {
    /// A beacon whose first transmission happens at `phase`.
    #[must_use]
    pub fn with_phase(phase: Duration) -> Self {
        Beacon {
            next: phase,
            frame: vec![0xB3; BEACON_LEN].into(),
            heard: 0,
        }
    }
}

impl Firmware for Beacon {
    fn on_timer(&mut self, ctx: &mut Context) {
        if ctx.now() >= self.next {
            ctx.transmit(self.frame.clone());
            self.next += BEACON_INTERVAL;
        }
    }
    fn on_frame(&mut self, _bytes: &[u8], _q: SignalQuality, _ctx: &mut Context) {
        self.heard += 1;
    }
    fn next_wake(&self) -> Option<Duration> {
        Some(self.next)
    }
}

/// Builds the n-node static-grid beacon simulation (n is rounded up to
/// the next perfect square). `shards` = 1 is the sequential engine;
/// larger values run the PR 6 sharded engine (behaviourally
/// transparent, asserted by the benchmark harness).
#[must_use]
pub fn build(n: usize, link_cache: bool, shards: usize, seed: u64) -> Simulator<Beacon> {
    let cfg = SimConfig {
        link_cache,
        shards,
        ..SimConfig::default()
    };
    build_cfg(n, cfg, seed)
}

/// [`build`] with a caller-shaped [`SimConfig`] (threads, spatial grid,
/// RNG streams, …).
#[must_use]
pub fn build_cfg(n: usize, cfg: SimConfig, seed: u64) -> Simulator<Beacon> {
    let spacing = topology::radio_range_m(&cfg.rf) * 0.8;
    let side = (n as f64).sqrt().ceil() as usize;
    let mut sim = Simulator::new(cfg, seed);
    for (i, pos) in topology::grid(side, side, spacing).into_iter().enumerate() {
        // Deterministic pseudo-random phase spreads transmissions over
        // the beacon period without consuming simulator RNG draws.
        let phase = Duration::from_millis((i as u64).wrapping_mul(2971) % 3000);
        sim.add_node(Beacon::with_phase(phase), pos);
    }
    sim
}

/// The mobile variant: the same beacon grid, but every
/// [`MOBILE_STRIDE`]-th node walks a RandomWaypoint over the deployment
/// area. Mobility ticks invalidate link-cache rows band by band, so the
/// measurement covers row rebuilds, grid rebuilds and — with
/// `cfg.threads > 1` — the wake-gated parallel prefetch regions.
#[must_use]
pub fn build_mobile(n: usize, cfg: SimConfig, seed: u64) -> Simulator<Beacon> {
    let spacing = topology::radio_range_m(&cfg.rf) * 0.8;
    let side = (n as f64).sqrt().ceil() as usize;
    let extent = side as f64 * spacing;
    let walk = Mobility::RandomWaypoint {
        width_m: extent,
        height_m: extent,
        min_speed: 2.0,
        max_speed: 14.0,
        pause: Duration::from_secs(2),
    };
    let mut sim = Simulator::new(cfg, seed);
    for (i, pos) in topology::grid(side, side, spacing).into_iter().enumerate() {
        let phase = Duration::from_millis((i as u64).wrapping_mul(2971) % 3000);
        if i % MOBILE_STRIDE == 0 {
            sim.add_mobile_node(Beacon::with_phase(phase), pos, walk.clone());
        } else {
            sim.add_node(Beacon::with_phase(phase), pos);
        }
    }
    sim
}

/// Distance between cluster origins in [`build_clusters`] beyond the
/// clusters' own extent — far outside any audible range, so the batch
/// planner sees one span-disjoint group per cluster.
pub const CLUSTER_GAP_M: f64 = 1.0e5;

/// The clustered variant for the parallel batch commit (PR 9):
/// `clusters` beacon grids of `n / clusters` nodes each, pitched
/// [`CLUSTER_GAP_M`] beyond audible range along x. Every lookahead
/// window carries several clusters' timers at once (the phases cycle
/// every 3 s across all clusters), so `cfg.threads` workers commit
/// whole per-band batches concurrently. A *contiguous* grid can never
/// exercise this path — adjacent bands' metre spans always overlap by
/// `2·r_max`, welding them into a single group.
#[must_use]
pub fn build_clusters(n: usize, clusters: usize, cfg: SimConfig, seed: u64) -> Simulator<Beacon> {
    let spacing = topology::radio_range_m(&cfg.rf) * 0.8;
    let per = n.div_ceil(clusters.max(1));
    let side = (per as f64).sqrt().ceil() as usize;
    let pitch = side as f64 * spacing + CLUSTER_GAP_M;
    let mut sim = Simulator::new(cfg, seed);
    let mut i = 0u64;
    for c in 0..clusters.max(1) {
        let dx = c as f64 * pitch;
        for pos in topology::grid(side, side, spacing).into_iter().take(per) {
            let phase = Duration::from_millis(i.wrapping_mul(2971) % 3000);
            sim.add_node(Beacon::with_phase(phase), Position::new(pos.x + dx, pos.y));
            i += 1;
        }
    }
    sim
}

/// Runs the clustered scenario and returns the final PHY metrics, the
/// number of events processed and the number of parallel batches the
/// commit engine executed (0 whenever `cfg.threads <= 1`).
#[must_use]
pub fn run_clusters(
    n: usize,
    clusters: usize,
    cfg: SimConfig,
    sim_secs: u64,
    seed: u64,
) -> (Metrics, u64, u64) {
    let mut sim = build_clusters(n, clusters, cfg, seed);
    sim.run_for(Duration::from_secs(sim_secs));
    let mut metrics = sim.metrics().clone();
    metrics.stale_timers_dropped = 0;
    (metrics, sim.events_processed(), sim.commit_batches())
}

/// Runs the scenario for `sim_secs` simulated seconds and returns the
/// final PHY metrics plus the number of events processed.
#[must_use]
pub fn run(n: usize, link_cache: bool, shards: usize, sim_secs: u64, seed: u64) -> (Metrics, u64) {
    finish(build(n, link_cache, shards, seed), sim_secs)
}

/// [`run`] over a caller-shaped config, static or mobile topology.
#[must_use]
pub fn run_cfg(n: usize, cfg: SimConfig, mobile: bool, sim_secs: u64, seed: u64) -> (Metrics, u64) {
    let sim = if mobile {
        build_mobile(n, cfg, seed)
    } else {
        build_cfg(n, cfg, seed)
    };
    finish(sim, sim_secs)
}

fn finish(mut sim: Simulator<Beacon>, sim_secs: u64) -> (Metrics, u64) {
    sim.run_for(Duration::from_secs(sim_secs));
    let mut metrics = sim.metrics().clone();
    // The engines may time out superseded timers on different sides of
    // the horizon (see `tests/shard_diff.rs`); every other field must
    // match exactly.
    metrics.stale_timers_dropped = 0;
    (metrics, sim.events_processed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_and_uncached_runs_agree() {
        let (cached, ev_c) = run(16, true, 1, 15, 42);
        let (uncached, ev_u) = run(16, false, 1, 15, 42);
        assert_eq!(cached, uncached);
        assert_eq!(ev_c, ev_u);
        assert!(cached.frames_transmitted > 0, "scenario must generate load");
        assert!(cached.frames_delivered > 0, "neighbors must hear beacons");
    }

    #[test]
    fn sequential_and_sharded_runs_agree() {
        let (seq, ev_s) = run(25, true, 1, 15, 42);
        for shards in [2, 4, 8] {
            let (sharded, ev) = run(25, true, shards, 15, 42);
            assert_eq!(seq, sharded, "{shards} shards changed behaviour");
            assert_eq!(ev_s, ev, "{shards} shards changed the event count");
        }
    }

    #[test]
    fn clustered_runs_agree_and_actually_commit_batches() {
        let cfg = |threads: usize| SimConfig {
            shards: 4,
            threads,
            rng_streams: true,
            // The 48-node smoke topology queues fewer events per window
            // than the default planner gate expects of a real workload.
            commit_batch_min_events: 1,
            ..SimConfig::default()
        };
        let (m1, e1, b1) = run_clusters(48, 4, cfg(1), 15, 42);
        assert!(m1.frames_delivered > 0, "clusters must deliver beacons");
        assert_eq!(b1, 0, "sequential runs never batch-commit");
        for threads in [2, 4] {
            let (m, e, b) = run_clusters(48, 4, cfg(threads), 15, 42);
            assert_eq!(m1, m, "{threads} threads changed behaviour");
            assert_eq!(e1, e, "{threads} threads changed the event count");
            assert!(b > 0, "{threads} threads never committed a batch");
        }
    }

    #[test]
    fn mobile_runs_agree_across_shards_and_threads() {
        // All legs — including the sequential reference — use the
        // per-node stream family: threads > 1 requires it (PR 9), and
        // the family must match across legs for the runs to compare.
        let cfg = |shards: usize, threads: usize| SimConfig {
            shards,
            threads,
            rng_streams: true,
            ..SimConfig::default()
        };
        let reference = run_cfg(81, cfg(1, 1), true, 15, 42);
        assert!(reference.0.frames_delivered > 0, "mobile grid must deliver");
        for (shards, threads) in [(1, 2), (4, 1), (4, 4)] {
            assert_eq!(
                reference,
                run_cfg(81, cfg(shards, threads), true, 15, 42),
                "mobile run diverged at shards={shards}, threads={threads}"
            );
        }
    }
}
