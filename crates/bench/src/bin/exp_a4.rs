//! Regenerates ablation A4 (SNR route tie-break on/off).
fn main() {
    let opt = bench::options_from_args();
    println!("{}", scenario::experiments::a4_snr_tiebreak(&opt));
}
