//! Regenerates experiment E8 of the LoRaMesher evaluation.
fn main() {
    let opt = bench::options_from_args();
    println!("{}", scenario::experiments::e8_duty_cycle(&opt));
}
