//! Regenerates experiment E4 of the LoRaMesher evaluation.
fn main() {
    let opt = bench::options_from_args();
    println!("{}", scenario::experiments::e4_latency(&opt));
}
