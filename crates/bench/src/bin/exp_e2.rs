//! Regenerates experiment E2 of the LoRaMesher evaluation.
fn main() {
    let opt = bench::options_from_args();
    println!("{}", scenario::experiments::e2_overhead(&opt));
}
