//! Regenerates experiment E11 (mobility extension) of the evaluation.
fn main() {
    let opt = bench::options_from_args();
    println!("{}", scenario::experiments::e11_mobility(&opt));
}
