//! Regenerates experiment E3 of the LoRaMesher evaluation.
fn main() {
    let opt = bench::options_from_args();
    println!("{}", scenario::experiments::e3_pdr_vs_hops(&opt));
}
