//! Regenerates experiment E6 of the LoRaMesher evaluation.
fn main() {
    let opt = bench::options_from_args();
    println!("{}", scenario::experiments::e6_reliable_goodput(&opt));
}
