//! Regenerates experiment E7 of the LoRaMesher evaluation.
fn main() {
    let opt = bench::options_from_args();
    println!("{}", scenario::experiments::e7_route_repair(&opt));
}
