//! Runs the complete evaluation suite (E1–E11 and the A1–A3 ablations)
//! and prints every table.
//!
//! With `--markdown`, emits GitHub-flavoured markdown (used to fill
//! EXPERIMENTS.md); with `--csv`, RFC 4180 CSV blocks for plotting;
//! otherwise aligned plain text. `--seeds N` replicates the randomised
//! experiments across N seeds (tables gain `mean ± sd` cells) and
//! `--jobs N` shards the runs over N worker threads.
fn main() {
    let mut markdown = false;
    let mut csv = false;
    let mut opt = scenario::experiments::ExpOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match bench::apply_common_flag(&mut opt, &arg, &mut args) {
            Ok(true) => {}
            Ok(false) => match arg.as_str() {
                "--markdown" => markdown = true,
                "--csv" => csv = true,
                other => {
                    eprintln!("unknown argument: {other}");
                    std::process::exit(2);
                }
            },
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
    for table in scenario::experiments::all(&opt) {
        if markdown {
            println!("{}", table.to_markdown());
        } else if csv {
            println!("# {}", table.title);
            println!("{}", table.to_csv());
        } else {
            println!("{table}");
        }
    }
}
