//! Runs the complete evaluation suite (E1–E11 and the A1–A3 ablations)
//! and prints every table.
//!
//! With `--markdown`, emits GitHub-flavoured markdown (used to fill
//! EXPERIMENTS.md); with `--csv`, RFC 4180 CSV blocks for plotting;
//! otherwise aligned plain text.
fn main() {
    let mut markdown = false;
    let mut csv = false;
    let mut opt = scenario::experiments::ExpOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opt.quick = true,
            "--markdown" => markdown = true,
            "--csv" => csv = true,
            "--seed" => {
                opt.seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N");
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    for table in scenario::experiments::all(&opt) {
        if markdown {
            println!("{}", table.to_markdown());
        } else if csv {
            println!("# {}", table.title);
            println!("{}", table.to_csv());
        } else {
            println!("{table}");
        }
    }
}
