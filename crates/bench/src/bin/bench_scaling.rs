//! Scaling benchmark for the simulator hot path, three sections:
//!
//! 1. **Link cache** — the static-grid beacon scenario at
//!    N ∈ {16, 64, 256, 1024}, link cache on vs off (the PR 2/PR 4
//!    trajectory), asserting identical metrics.
//! 2. **Sharded engine** — the same scenario at large N
//!    (4096 and 16384 nodes) with the event engine running sequentially
//!    (`shards = 1`) vs spatially sharded (4 and 8 bands), asserting
//!    identical metrics *and identical event counts* — the engines must
//!    process the exact same timeline, only faster. Since PR 7 the rows
//!    this section fills are sparse (spatial-grid candidates, not all
//!    n nodes) and the bands are occupancy-weighted.
//! 3. **Worker threads** — the mobile variant (every third node on a
//!    RandomWaypoint, so rows are re-filled all run long) at a fixed
//!    shard count with `threads` ∈ {1, 2, 4}: thread counts must leave
//!    metrics and event counts byte-identical while the wake-gated
//!    prefetch regions fan row construction out across workers.
//! 4. **Parallel batch commit** (PR 9) — far-apart beacon clusters at
//!    4096 and 16384 nodes, shards ∈ {4, 8} × threads ∈ {1, 2, 4}:
//!    every lookahead window carries several span-disjoint groups, so
//!    worker threads commit whole per-band batches concurrently. The
//!    harness asserts identical metrics and event counts across thread
//!    counts and that every threaded leg really committed batches.
//!    All legs of this section run the per-node RNG stream family.
//!
//! ```text
//! bench_scaling [--smoke] [--out PATH] [--secs N] [--seed N]
//! ```
//!
//! `--out PATH` writes a JSON report (`scripts/bench.sh` points it at
//! `BENCH_PR9.json`; `BENCH_PR2/4/6/7.json` are earlier baselines);
//! `--smoke` shrinks the run to a CI-friendly correctness check.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use bench::scaling;
use radio_sim::metrics::Metrics;
use radio_sim::SimConfig;

/// Wall-clock timings and outcome of one (n, link_cache, shards)
/// measurement.
struct Measurement {
    metrics: Metrics,
    events: u64,
    wall: Duration,
}

/// Runs one configuration `repeats` times and keeps the fastest wall
/// time (the usual bench practice: minimum is the least noisy estimator
/// of the true cost).
fn measure(
    n: usize,
    link_cache: bool,
    shards: usize,
    sim_secs: u64,
    seed: u64,
    repeats: usize,
) -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let (metrics, events) = scaling::run(n, link_cache, shards, sim_secs, seed);
        let wall = start.elapsed();
        if best.as_ref().is_none_or(|b| wall < b.wall) {
            best = Some(Measurement {
                metrics,
                events,
                wall,
            });
        }
    }
    best.expect("at least one repeat")
}

/// [`measure`] over a caller-shaped config and topology choice.
fn measure_cfg(
    n: usize,
    cfg: &SimConfig,
    mobile: bool,
    sim_secs: u64,
    seed: u64,
    repeats: usize,
) -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let (metrics, events) = scaling::run_cfg(n, cfg.clone(), mobile, sim_secs, seed);
        let wall = start.elapsed();
        if best.as_ref().is_none_or(|b| wall < b.wall) {
            best = Some(Measurement {
                metrics,
                events,
                wall,
            });
        }
    }
    best.expect("at least one repeat")
}

fn per_sec(m: &Measurement) -> f64 {
    m.events as f64 / m.wall.as_secs_f64()
}

fn per_event_ns(m: &Measurement) -> f64 {
    m.wall.as_nanos() as f64 / m.events as f64
}

struct Row {
    nodes: usize,
    events: u64,
    cached_events_per_sec: f64,
    cached_ns_per_event: f64,
    uncached_events_per_sec: f64,
    uncached_ns_per_event: f64,
    speedup: f64,
}

/// One shard count's timing at a fixed node count.
struct ShardCell {
    shards: usize,
    events_per_sec: f64,
    ns_per_event: f64,
    /// Sequential wall time / this wall time.
    speedup: f64,
}

struct ShardRow {
    nodes: usize,
    sim_secs: u64,
    events: u64,
    cells: Vec<ShardCell>,
}

/// One thread count's timing at a fixed (nodes, shards).
struct ThreadCell {
    threads: usize,
    events_per_sec: f64,
    ns_per_event: f64,
    /// threads = 1 wall time / this wall time.
    speedup: f64,
}

struct ThreadRow {
    nodes: usize,
    shards: usize,
    sim_secs: u64,
    events: u64,
    cells: Vec<ThreadCell>,
}

/// One thread count's timing in the parallel-batch-commit section.
struct CommitCell {
    threads: usize,
    events_per_sec: f64,
    ns_per_event: f64,
    /// threads = 1 wall time / this wall time.
    speedup: f64,
    /// Parallel batches the commit engine executed (0 at threads = 1).
    batches: u64,
}

struct CommitRow {
    nodes: usize,
    clusters: usize,
    shards: usize,
    sim_secs: u64,
    events: u64,
    cells: Vec<CommitCell>,
}

fn json_report(
    sim_secs: u64,
    seed: u64,
    rows: &[Row],
    shard_rows: &[ShardRow],
    thread_rows: &[ThreadRow],
    commit_rows: &[CommitRow],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"scaling_static_grid_beacon\",");
    let _ = writeln!(s, "  \"sim_seconds\": {sim_secs},");
    let _ = writeln!(s, "  \"seed\": {seed},");
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"nodes\": {}, \"events\": {}, \
             \"cached_events_per_sec\": {:.0}, \"cached_ns_per_event\": {:.1}, \
             \"uncached_events_per_sec\": {:.0}, \"uncached_ns_per_event\": {:.1}, \
             \"speedup\": {:.2}}}",
            r.nodes,
            r.events,
            r.cached_events_per_sec,
            r.cached_ns_per_event,
            r.uncached_events_per_sec,
            r.uncached_ns_per_event,
            r.speedup
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n  \"shard_rows\": [\n");
    for (i, r) in shard_rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"nodes\": {}, \"sim_seconds\": {}, \"events\": {}, \"engines\": [",
            r.nodes, r.sim_secs, r.events
        );
        for (j, c) in r.cells.iter().enumerate() {
            let _ = write!(
                s,
                "{{\"shards\": {}, \"events_per_sec\": {:.0}, \
                 \"ns_per_event\": {:.1}, \"speedup\": {:.2}}}",
                c.shards, c.events_per_sec, c.ns_per_event, c.speedup
            );
            if j + 1 < r.cells.len() {
                s.push_str(", ");
            }
        }
        s.push_str("]}");
        s.push_str(if i + 1 < shard_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  ],\n  \"thread_rows\": [\n");
    for (i, r) in thread_rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"nodes\": {}, \"shards\": {}, \"sim_seconds\": {}, \
             \"events\": {}, \"mobile\": true, \"engines\": [",
            r.nodes, r.shards, r.sim_secs, r.events
        );
        for (j, c) in r.cells.iter().enumerate() {
            let _ = write!(
                s,
                "{{\"threads\": {}, \"events_per_sec\": {:.0}, \
                 \"ns_per_event\": {:.1}, \"speedup\": {:.2}}}",
                c.threads, c.events_per_sec, c.ns_per_event, c.speedup
            );
            if j + 1 < r.cells.len() {
                s.push_str(", ");
            }
        }
        s.push_str("]}");
        s.push_str(if i + 1 < thread_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  ],\n  \"commit_rows\": [\n");
    for (i, r) in commit_rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"nodes\": {}, \"clusters\": {}, \"shards\": {}, \
             \"sim_seconds\": {}, \"events\": {}, \"rng_streams\": true, \"engines\": [",
            r.nodes, r.clusters, r.shards, r.sim_secs, r.events
        );
        for (j, c) in r.cells.iter().enumerate() {
            let _ = write!(
                s,
                "{{\"threads\": {}, \"events_per_sec\": {:.0}, \
                 \"ns_per_event\": {:.1}, \"speedup\": {:.2}, \"commit_batches\": {}}}",
                c.threads, c.events_per_sec, c.ns_per_event, c.speedup, c.batches
            );
            if j + 1 < r.cells.len() {
                s.push_str(", ");
            }
        }
        s.push_str("]}");
        s.push_str(if i + 1 < commit_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    let mut sim_secs: Option<u64> = None;
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let int = |v: Option<String>, flag: &str| -> u64 {
            v.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{flag} requires an integer");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                out_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }));
            }
            "--secs" => sim_secs = Some(int(args.next(), "--secs")),
            "--seed" => seed = int(args.next(), "--seed"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_scaling [--smoke] [--out PATH] [--secs N] [--seed N]");
                std::process::exit(2);
            }
        }
    }
    let sizes: &[usize] = if smoke { &[16] } else { &[16, 64, 256, 1024] };
    let sim_secs = sim_secs.unwrap_or(if smoke { 20 } else { 120 });
    let repeats = if smoke { 1 } else { 3 };

    println!("static-grid beacon scenario, {sim_secs} simulated seconds, seed {seed}");
    println!(
        "{:>6} {:>10} {:>14} {:>13} {:>14} {:>13} {:>8}",
        "nodes", "events", "cached ev/s", "cached ns/ev", "uncached ev/s", "unc. ns/ev", "speedup"
    );
    let mut rows = Vec::new();
    for &n in sizes {
        let uncached = measure(n, false, 1, sim_secs, seed, repeats);
        let cached = measure(n, true, 1, sim_secs, seed, repeats);
        // The cache must be behaviourally transparent — a differing run
        // would make every speedup number meaningless.
        assert_eq!(
            cached.metrics, uncached.metrics,
            "link cache changed behaviour at n={n}"
        );
        assert_eq!(cached.events, uncached.events);
        let row = Row {
            nodes: n,
            events: cached.events,
            cached_events_per_sec: per_sec(&cached),
            cached_ns_per_event: per_event_ns(&cached),
            uncached_events_per_sec: per_sec(&uncached),
            uncached_ns_per_event: per_event_ns(&uncached),
            speedup: uncached.wall.as_secs_f64() / cached.wall.as_secs_f64(),
        };
        println!(
            "{:>6} {:>10} {:>14.0} {:>13.1} {:>14.0} {:>13.1} {:>7.2}x",
            row.nodes,
            row.events,
            row.cached_events_per_sec,
            row.cached_ns_per_event,
            row.uncached_events_per_sec,
            row.uncached_ns_per_event,
            row.speedup
        );
        rows.push(row);
    }

    // Sharded engine at scale: big grids, link cache on, one repeat
    // (the runs are long enough to be self-averaging). The 16384-node
    // grid keeps a shorter horizon so the sequential reference leg
    // stays affordable.
    let shard_sizes: &[(usize, u64)] = if smoke {
        &[(64, 20)]
    } else {
        &[(4096, 120), (16384, 30)]
    };
    let shard_counts: &[usize] = if smoke { &[1, 4] } else { &[1, 4, 8] };
    println!();
    println!(
        "{:>6} {:>8} {:>10} {:>6} {:>12} {:>10} {:>8}",
        "nodes", "sim s", "events", "shards", "events/s", "ns/event", "speedup"
    );
    let mut shard_rows = Vec::new();
    for &(n, secs) in shard_sizes {
        let mut cells = Vec::new();
        let mut reference: Option<Measurement> = None;
        for &shards in shard_counts {
            let m = measure(n, true, shards, secs, seed, 1);
            if let Some(seq) = &reference {
                // The sharded engine must replay the sequential
                // timeline event for event.
                assert_eq!(
                    seq.metrics, m.metrics,
                    "{shards} shards changed behaviour at n={n}"
                );
                assert_eq!(
                    seq.events, m.events,
                    "{shards} shards changed the event count at n={n}"
                );
            }
            let speedup = reference
                .as_ref()
                .map_or(1.0, |seq| seq.wall.as_secs_f64() / m.wall.as_secs_f64());
            println!(
                "{:>6} {:>8} {:>10} {:>6} {:>12.0} {:>10.1} {:>7.2}x",
                n,
                secs,
                m.events,
                shards,
                per_sec(&m),
                per_event_ns(&m),
                speedup
            );
            cells.push(ShardCell {
                shards,
                events_per_sec: per_sec(&m),
                ns_per_event: per_event_ns(&m),
                speedup,
            });
            if reference.is_none() {
                reference = Some(m);
            }
        }
        shard_rows.push(ShardRow {
            nodes: n,
            sim_secs: secs,
            events: reference.expect("at least one shard count").events,
            cells,
        });
    }

    // Worker threads on the mobile variant: mobility keeps invalidating
    // rows, so the wake-gated prefetch regions run all simulation long.
    // Thread counts must be behaviourally invisible; wall-clock scaling
    // depends on the host's core count (a single-core host can at best
    // break even, trading lazy coordinator fills for batched prefetch).
    let thread_sizes: &[(usize, usize, u64)] = if smoke {
        &[(64, 4, 20)]
    } else {
        &[(4096, 4, 60)]
    };
    let thread_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };
    println!();
    println!(
        "{:>6} {:>6} {:>8} {:>10} {:>7} {:>12} {:>10} {:>8}",
        "nodes", "shards", "sim s", "events", "threads", "events/s", "ns/event", "speedup"
    );
    let mut thread_rows = Vec::new();
    for &(n, shards, secs) in thread_sizes {
        let mut cells = Vec::new();
        let mut reference: Option<Measurement> = None;
        for &threads in thread_counts {
            // Every leg shares the per-node stream family: threads > 1
            // requires it (PR 9), and the family must match across legs
            // for the runs to compare byte-identical.
            let cfg = SimConfig {
                shards,
                threads,
                rng_streams: true,
                ..SimConfig::default()
            };
            let m = measure_cfg(n, &cfg, true, secs, seed, 1);
            if let Some(one) = &reference {
                assert_eq!(
                    one.metrics, m.metrics,
                    "{threads} threads changed behaviour at n={n}"
                );
                assert_eq!(
                    one.events, m.events,
                    "{threads} threads changed the event count at n={n}"
                );
            }
            let speedup = reference
                .as_ref()
                .map_or(1.0, |one| one.wall.as_secs_f64() / m.wall.as_secs_f64());
            println!(
                "{:>6} {:>6} {:>8} {:>10} {:>7} {:>12.0} {:>10.1} {:>7.2}x",
                n,
                shards,
                secs,
                m.events,
                threads,
                per_sec(&m),
                per_event_ns(&m),
                speedup
            );
            cells.push(ThreadCell {
                threads,
                events_per_sec: per_sec(&m),
                ns_per_event: per_event_ns(&m),
                speedup,
            });
            if reference.is_none() {
                reference = Some(m);
            }
        }
        thread_rows.push(ThreadRow {
            nodes: n,
            shards,
            sim_secs: secs,
            events: reference.expect("at least one thread count").events,
            cells,
        });
    }

    // Parallel batch commit (PR 9): far-apart beacon clusters give the
    // planner span-disjoint groups every lookahead window, so worker
    // threads commit whole per-band batches — firmware dispatch, radio
    // state machines, medium bookkeeping — concurrently. Thread counts
    // must be behaviourally invisible, and every threaded leg must
    // actually commit batches (a silent fall-back to the sequential
    // drain would benchmark nothing). Wall-clock speedup needs real
    // cores; a single-core host at best breaks even, paying the batch
    // planner for no concurrency.
    let commit_sizes: &[(usize, usize, u64)] = if smoke {
        &[(48, 4, 20)]
    } else {
        &[(4096, 8, 60), (16384, 8, 20)]
    };
    let commit_shards: &[usize] = if smoke { &[4] } else { &[4, 8] };
    let commit_threads: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };
    println!();
    println!(
        "{:>6} {:>8} {:>6} {:>8} {:>10} {:>7} {:>12} {:>10} {:>8} {:>9}",
        "nodes",
        "clusters",
        "shards",
        "sim s",
        "events",
        "threads",
        "events/s",
        "ns/event",
        "speedup",
        "batches"
    );
    let mut commit_rows = Vec::new();
    for &(n, clusters, secs) in commit_sizes {
        for &shards in commit_shards {
            let mut cells = Vec::new();
            let mut reference: Option<Measurement> = None;
            for &threads in commit_threads {
                let cfg = SimConfig {
                    shards,
                    threads,
                    rng_streams: true,
                    // The smoke topology queues fewer events per window
                    // than the default planner gate expects of a real
                    // workload; the full sizes use the default gate.
                    commit_batch_min_events: if smoke {
                        1
                    } else {
                        SimConfig::default().commit_batch_min_events
                    },
                    ..SimConfig::default()
                };
                let start = Instant::now();
                let (metrics, events, batches) =
                    scaling::run_clusters(n, clusters, cfg, secs, seed);
                let wall = start.elapsed();
                let m = Measurement {
                    metrics,
                    events,
                    wall,
                };
                if let Some(one) = &reference {
                    assert_eq!(
                        one.metrics, m.metrics,
                        "{threads} commit threads changed behaviour at n={n}, shards={shards}"
                    );
                    assert_eq!(
                        one.events, m.events,
                        "{threads} commit threads changed the event count at n={n}, \
                         shards={shards}"
                    );
                }
                assert!(
                    threads == 1 || batches > 0,
                    "threads={threads} never committed a parallel batch at n={n}, \
                     shards={shards} — the measurement is vacuous"
                );
                let speedup = reference
                    .as_ref()
                    .map_or(1.0, |one| one.wall.as_secs_f64() / m.wall.as_secs_f64());
                println!(
                    "{:>6} {:>8} {:>6} {:>8} {:>10} {:>7} {:>12.0} {:>10.1} {:>7.2}x {:>9}",
                    n,
                    clusters,
                    shards,
                    secs,
                    m.events,
                    threads,
                    per_sec(&m),
                    per_event_ns(&m),
                    speedup,
                    batches
                );
                cells.push(CommitCell {
                    threads,
                    events_per_sec: per_sec(&m),
                    ns_per_event: per_event_ns(&m),
                    speedup,
                    batches,
                });
                if reference.is_none() {
                    reference = Some(m);
                }
            }
            commit_rows.push(CommitRow {
                nodes: n,
                clusters,
                shards,
                sim_secs: secs,
                events: reference.expect("at least one thread count").events,
                cells,
            });
        }
    }

    if let Some(path) = out_path {
        let report = json_report(
            sim_secs,
            seed,
            &rows,
            &shard_rows,
            &thread_rows,
            &commit_rows,
        );
        std::fs::write(&path, &report).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
    }
}
