//! Scaling benchmark for the simulator hot path: the static-grid beacon
//! scenario at N ∈ {16, 64, 256, 1024} nodes, run with the link cache
//! on and off, asserting identical metrics and reporting events/sec,
//! ns/event and the cached-vs-uncached speedup.
//!
//! ```text
//! bench_scaling [--smoke] [--out PATH] [--secs N] [--seed N]
//! ```
//!
//! `--out PATH` writes a JSON report (`scripts/bench.sh` points it at
//! `BENCH_PR4.json` so the repo keeps a perf trajectory across PRs;
//! `BENCH_PR2.json` is the pre-overhaul baseline to compare against);
//! `--smoke` shrinks the run to a CI-friendly correctness check.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use bench::scaling;
use radio_sim::metrics::Metrics;

/// Wall-clock timings and outcome of one (n, link_cache) measurement.
struct Measurement {
    metrics: Metrics,
    events: u64,
    wall: Duration,
}

/// Runs one configuration `repeats` times and keeps the fastest wall
/// time (the usual bench practice: minimum is the least noisy estimator
/// of the true cost).
fn measure(n: usize, link_cache: bool, sim_secs: u64, seed: u64, repeats: usize) -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let (metrics, events) = scaling::run(n, link_cache, sim_secs, seed);
        let wall = start.elapsed();
        if best.as_ref().is_none_or(|b| wall < b.wall) {
            best = Some(Measurement {
                metrics,
                events,
                wall,
            });
        }
    }
    best.expect("at least one repeat")
}

struct Row {
    nodes: usize,
    events: u64,
    cached_events_per_sec: f64,
    cached_ns_per_event: f64,
    uncached_events_per_sec: f64,
    uncached_ns_per_event: f64,
    speedup: f64,
}

fn json_report(sim_secs: u64, seed: u64, rows: &[Row]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"scaling_static_grid_beacon\",");
    let _ = writeln!(s, "  \"sim_seconds\": {sim_secs},");
    let _ = writeln!(s, "  \"seed\": {seed},");
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"nodes\": {}, \"events\": {}, \
             \"cached_events_per_sec\": {:.0}, \"cached_ns_per_event\": {:.1}, \
             \"uncached_events_per_sec\": {:.0}, \"uncached_ns_per_event\": {:.1}, \
             \"speedup\": {:.2}}}",
            r.nodes,
            r.events,
            r.cached_events_per_sec,
            r.cached_ns_per_event,
            r.uncached_events_per_sec,
            r.uncached_ns_per_event,
            r.speedup
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    let mut sim_secs: Option<u64> = None;
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let int = |v: Option<String>, flag: &str| -> u64 {
            v.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{flag} requires an integer");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                out_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }));
            }
            "--secs" => sim_secs = Some(int(args.next(), "--secs")),
            "--seed" => seed = int(args.next(), "--seed"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_scaling [--smoke] [--out PATH] [--secs N] [--seed N]");
                std::process::exit(2);
            }
        }
    }
    let sizes: &[usize] = if smoke { &[16] } else { &[16, 64, 256, 1024] };
    let sim_secs = sim_secs.unwrap_or(if smoke { 20 } else { 120 });
    let repeats = if smoke { 1 } else { 3 };

    println!("static-grid beacon scenario, {sim_secs} simulated seconds, seed {seed}");
    println!(
        "{:>6} {:>10} {:>14} {:>13} {:>14} {:>13} {:>8}",
        "nodes", "events", "cached ev/s", "cached ns/ev", "uncached ev/s", "unc. ns/ev", "speedup"
    );
    let mut rows = Vec::new();
    for &n in sizes {
        let uncached = measure(n, false, sim_secs, seed, repeats);
        let cached = measure(n, true, sim_secs, seed, repeats);
        // The cache must be behaviourally transparent — a differing run
        // would make every speedup number meaningless.
        assert_eq!(
            cached.metrics, uncached.metrics,
            "link cache changed behaviour at n={n}"
        );
        assert_eq!(cached.events, uncached.events);
        let per_sec = |m: &Measurement| m.events as f64 / m.wall.as_secs_f64();
        let per_event_ns = |m: &Measurement| m.wall.as_nanos() as f64 / m.events as f64;
        let row = Row {
            nodes: n,
            events: cached.events,
            cached_events_per_sec: per_sec(&cached),
            cached_ns_per_event: per_event_ns(&cached),
            uncached_events_per_sec: per_sec(&uncached),
            uncached_ns_per_event: per_event_ns(&uncached),
            speedup: uncached.wall.as_secs_f64() / cached.wall.as_secs_f64(),
        };
        println!(
            "{:>6} {:>10} {:>14.0} {:>13.1} {:>14.0} {:>13.1} {:>7.2}x",
            row.nodes,
            row.events,
            row.cached_events_per_sec,
            row.cached_ns_per_event,
            row.uncached_events_per_sec,
            row.uncached_ns_per_event,
            row.speedup
        );
        rows.push(row);
    }

    if let Some(path) = out_path {
        let report = json_report(sim_secs, seed, &rows);
        std::fs::write(&path, &report).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
    }
}
