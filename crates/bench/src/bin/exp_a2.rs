//! Regenerates ablation A2 (capture effect on/off).
fn main() {
    let opt = bench::options_from_args();
    println!("{}", scenario::experiments::a2_capture_ablation(&opt));
}
