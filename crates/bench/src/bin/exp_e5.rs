//! Regenerates experiment E5 of the LoRaMesher evaluation.
fn main() {
    let opt = bench::options_from_args();
    println!("{}", scenario::experiments::e5_protocol_comparison(&opt));
}
