//! Regenerates experiment E9 of the LoRaMesher evaluation.
fn main() {
    let opt = bench::options_from_args();
    println!("{}", scenario::experiments::e9_state_size(&opt));
}
