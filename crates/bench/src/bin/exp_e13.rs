//! Regenerates experiment E13 — the LoRaMesher vs. managed-flooding
//! head-to-head under the Meshtastic LongFast/LongSlow modem presets.
fn main() {
    let opt = bench::options_from_args();
    println!("{}", scenario::experiments::e13_stack_head_to_head(&opt));
}
