//! Regenerates ablation A1 (CSMA vs. ALOHA).
fn main() {
    let opt = bench::options_from_args();
    println!("{}", scenario::experiments::a1_csma_ablation(&opt));
}
