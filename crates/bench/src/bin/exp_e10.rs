//! Regenerates experiment E10 (wire-format table) of the evaluation.
fn main() {
    let _ = bench::options_from_args();
    println!("{}", scenario::experiments::e10_wire_format());
}
