//! Regenerates experiment E1 of the LoRaMesher evaluation.
fn main() {
    let opt = bench::options_from_args();
    println!("{}", scenario::experiments::e1_convergence(&opt));
}
