//! Regenerates experiment E12 (airtime fairness) of the evaluation.
fn main() {
    let opt = bench::options_from_args();
    println!("{}", scenario::experiments::e12_fairness(&opt));
}
