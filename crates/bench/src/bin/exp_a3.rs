//! Regenerates ablation A3 (hello jitter on/off).
fn main() {
    let opt = bench::options_from_args();
    println!("{}", scenario::experiments::a3_jitter_ablation(&opt));
}
