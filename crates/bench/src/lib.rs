//! Benchmark harness for the LoRaMesher reproduction.
//!
//! Two kinds of targets live here:
//!
//! * **Experiment binaries** (`src/bin/exp_e1.rs` … `exp_e10.rs`, plus
//!   `exp_all`): each regenerates one table/figure of the evaluation by
//!   calling into [`scenario::experiments`] and printing the result
//!   table. Pass `--quick` for a scaled-down run.
//! * **Bench targets** (`cargo bench`): `experiments` re-runs the whole
//!   evaluation suite (set `LORAMESHER_QUICK=1` for the scaled-down
//!   version) and `micro` holds self-contained micro-benchmarks for the
//!   codec, routing table, time-on-air math, PRNG and simulator core
//!   (plain [`std::time::Instant`] timing — no external harness).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scaling;

use scenario::experiments::ExpOptions;
use scenario::runner::ProtocolChoice;

/// Parses the common CLI of the experiment binaries: `--quick` shrinks
/// sweeps, `--seed N` overrides the master seed, `--seeds N` replicates
/// every cell across N spread seeds, `--jobs N` spreads the runs over N
/// worker threads, and `--shards N` / `--threads N` configure each
/// simulator's sharded engine and parallel evaluate regions (the tables
/// are identical for every jobs, shards and threads count).
/// `--protocol NAME` restricts the protocol-comparison experiments to a
/// single stack (`loramesher`, `flooding` or `star`).
#[must_use]
pub fn options_from_args() -> ExpOptions {
    let mut opt = ExpOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let outcome = apply_common_flag(&mut opt, &arg, &mut args);
        match outcome {
            Ok(true) => {}
            Ok(false) | Err(_) => {
                match outcome {
                    Err(msg) => eprintln!("{msg}"),
                    _ => eprintln!("unknown argument: {arg}"),
                }
                eprintln!(
                    "usage: exp_eN [--quick] [--seed N] [--seeds N] [--jobs N] [--shards N] [--threads N] [--protocol NAME]"
                );
                std::process::exit(2);
            }
        }
    }
    opt
}

/// Applies one experiment flag shared by every `exp_*` binary.
///
/// Returns `Ok(true)` when `arg` was recognised and consumed (pulling
/// its value from `rest` if it takes one), `Ok(false)` when it is not a
/// common flag, and `Err` with a message for a recognised flag whose
/// value is missing or malformed.
///
/// # Errors
///
/// Returns the offending flag's usage string when its value is missing
/// or fails to parse.
pub fn apply_common_flag(
    opt: &mut ExpOptions,
    arg: &str,
    rest: &mut impl Iterator<Item = String>,
) -> Result<bool, String> {
    let mut int = |flag: &str| {
        rest.next()
            .and_then(|v| v.parse::<u64>().ok())
            .ok_or_else(|| format!("{flag} requires an integer"))
    };
    match arg {
        "--quick" => opt.quick = true,
        "--seed" => opt.seed = int("--seed")?,
        "--seeds" => {
            opt.seeds = int("--seeds")?.max(1) as usize;
        }
        "--jobs" => {
            opt.jobs = int("--jobs")?.max(1) as usize;
        }
        "--shards" => {
            opt.shards = int("--shards")?.max(1) as usize;
        }
        "--threads" => {
            opt.threads = int("--threads")?.max(1) as usize;
        }
        "--protocol" => {
            let name = rest
                .next()
                .ok_or_else(|| String::from("--protocol requires a name"))?;
            opt.protocol = Some(match name.as_str() {
                "mesh" | "loramesher" => ProtocolChoice::mesh_fast(),
                "flooding" => ProtocolChoice::Flooding { ttl: 7 },
                "star" => ProtocolChoice::Star { gateway: 0 },
                other => {
                    return Err(format!(
                        "unknown protocol '{other}' (try loramesher, flooding or star)"
                    ))
                }
            });
        }
        _ => return Ok(false),
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Note: deliberately not options_from_args() — that reads the *test
    // binary's* arguments (libtest flags such as --quiet) and would exit.
    #[test]
    fn default_options_are_full() {
        let opt = ExpOptions::default();
        assert!(!opt.quick);
        assert_eq!(opt.seed, 42);
        assert_eq!(opt.seeds, 1);
        assert_eq!(opt.jobs, 1);
    }

    #[test]
    fn common_flags_apply() {
        let mut opt = ExpOptions::default();
        let mut rest = ["8"].iter().map(ToString::to_string);
        assert_eq!(apply_common_flag(&mut opt, "--seeds", &mut rest), Ok(true));
        assert_eq!(opt.seeds, 8);
        let mut rest = ["4"].iter().map(ToString::to_string);
        assert_eq!(apply_common_flag(&mut opt, "--jobs", &mut rest), Ok(true));
        assert_eq!(opt.jobs, 4);
        let mut rest = ["4"].iter().map(ToString::to_string);
        assert_eq!(apply_common_flag(&mut opt, "--shards", &mut rest), Ok(true));
        assert_eq!(opt.shards, 4);
        let mut rest = ["2"].iter().map(ToString::to_string);
        assert_eq!(
            apply_common_flag(&mut opt, "--threads", &mut rest),
            Ok(true)
        );
        assert_eq!(opt.threads, 2);
        let mut rest = std::iter::empty::<String>();
        assert_eq!(
            apply_common_flag(&mut opt, "--markdown", &mut rest),
            Ok(false),
            "unknown flags are left to the caller"
        );
        let mut rest = std::iter::empty::<String>();
        assert!(apply_common_flag(&mut opt, "--seeds", &mut rest).is_err());
    }

    #[test]
    fn protocol_flag_applies() {
        let mut opt = ExpOptions::default();
        assert_eq!(opt.protocol, None);
        let mut rest = ["flooding"].iter().map(ToString::to_string);
        assert_eq!(
            apply_common_flag(&mut opt, "--protocol", &mut rest),
            Ok(true)
        );
        assert_eq!(opt.protocol, Some(ProtocolChoice::Flooding { ttl: 7 }));
        let mut rest = ["loramesher"].iter().map(ToString::to_string);
        assert_eq!(
            apply_common_flag(&mut opt, "--protocol", &mut rest),
            Ok(true)
        );
        assert_eq!(opt.protocol, Some(ProtocolChoice::mesh_fast()));
    }

    #[test]
    fn unknown_protocol_is_an_error_naming_the_choices() {
        let mut opt = ExpOptions::default();
        let mut rest = ["meshtastic"].iter().map(ToString::to_string);
        let err = apply_common_flag(&mut opt, "--protocol", &mut rest).unwrap_err();
        assert!(err.contains("unknown protocol 'meshtastic'"), "{err}");
        assert!(
            err.contains("loramesher") && err.contains("flooding"),
            "{err}"
        );
    }
}
