//! Benchmark harness for the LoRaMesher reproduction.
//!
//! Two kinds of targets live here:
//!
//! * **Experiment binaries** (`src/bin/exp_e1.rs` … `exp_e10.rs`, plus
//!   `exp_all`): each regenerates one table/figure of the evaluation by
//!   calling into [`scenario::experiments`] and printing the result
//!   table. Pass `--quick` for a scaled-down run.
//! * **Bench targets** (`cargo bench`): `experiments` re-runs the whole
//!   evaluation suite (set `LORAMESHER_QUICK=1` for the scaled-down
//!   version) and `micro` holds the Criterion micro-benchmarks for the
//!   codec, routing table, time-on-air math, PRNG and simulator core.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use scenario::experiments::ExpOptions;

/// Parses the common CLI of the experiment binaries: `--quick` shrinks
/// sweeps, `--seed N` overrides the master seed.
#[must_use]
pub fn options_from_args() -> ExpOptions {
    let mut opt = ExpOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opt.quick = true,
            "--seed" => {
                opt.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed requires an integer");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: exp_eN [--quick] [--seed N]");
                std::process::exit(2);
            }
        }
    }
    opt
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_full() {
        let opt = options_from_args();
        assert!(!opt.quick);
        assert_eq!(opt.seed, 42);
    }
}
