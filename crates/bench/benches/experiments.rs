//! `cargo bench` target regenerating every table and figure of the
//! evaluation (E1–E10).
//!
//! This is intentionally not a Criterion bench: the deliverable is the
//! tables themselves, printed with wall-clock timings per experiment.
//! Set `LORAMESHER_QUICK=1` to run the scaled-down sweeps.

use std::time::Instant;

use scenario::experiments::{self, ExpOptions};

fn main() {
    let quick = std::env::var("LORAMESHER_QUICK").is_ok_and(|v| v != "0");
    let opt = ExpOptions {
        quick,
        ..ExpOptions::default()
    };
    println!(
        "LoRaMesher evaluation suite ({} sweeps, seed {})\n",
        if quick { "quick" } else { "full" },
        opt.seed
    );
    type Experiment = (&'static str, fn(&ExpOptions) -> scenario::ExpTable);
    let experiments: Vec<Experiment> = vec![
        ("E1", experiments::e1_convergence),
        ("E2", experiments::e2_overhead),
        ("E3", experiments::e3_pdr_vs_hops),
        ("E4", experiments::e4_latency),
        ("E5", experiments::e5_protocol_comparison),
        ("E6", experiments::e6_reliable_goodput),
        ("E7", experiments::e7_route_repair),
        ("E8", experiments::e8_duty_cycle),
        ("E9", experiments::e9_state_size),
        ("E10", |_| experiments::e10_wire_format()),
        ("E11", experiments::e11_mobility),
        ("E12", experiments::e12_fairness),
        ("A1", experiments::a1_csma_ablation),
        ("A2", experiments::a2_capture_ablation),
        ("A3", experiments::a3_jitter_ablation),
        ("A4", experiments::a4_snr_tiebreak),
    ];
    for (name, run) in experiments {
        let start = Instant::now();
        let table = run(&opt);
        let elapsed = start.elapsed();
        println!("{table}");
        println!(
            "  [{name} completed in {:.2} s wall clock]\n",
            elapsed.as_secs_f64()
        );
    }
}
