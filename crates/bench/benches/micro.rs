//! Micro-benchmarks for the hot paths of the stack: wire codec,
//! routing-table updates, time-on-air math, the simulation PRNG, and
//! end-to-end simulator throughput.
//!
//! Self-contained: a [`std::time::Instant`] harness that calibrates a
//! batch size, times a handful of batches and reports the median
//! ns/iter — no external benchmark framework, so `cargo bench` works
//! fully offline. Pass a substring to run a subset:
//! `cargo bench --bench micro -- codec`.

use std::time::{Duration, Instant};

use lora_phy::modulation::{Bandwidth, CodingRate, LoRaModulation, SpreadingFactor};
use lora_phy::propagation::Position;
use loramesher::addr::Address;
use loramesher::codec;
use loramesher::packet::{Forwarding, Packet, RouteEntry};
use loramesher::routing::RoutingTable;
use radio_sim::rng::SimRng;
use radio_sim::topology;
use scenario::runner::NetworkBuilder;

/// Target wall time for one timed batch during calibration.
const BATCH_TARGET: Duration = Duration::from_millis(5);
/// Timed batches per benchmark; the median is reported.
const SAMPLES: usize = 5;
/// Upper bound on the calibrated batch size.
const MAX_ITERS: u64 = 1 << 20;

/// Times `f` and prints `name  <median> ns/iter` when `name` matches the
/// filter. Batch size is doubled until one batch reaches [`BATCH_TARGET`]
/// (so cheap operations amortise the clock overhead), then [`SAMPLES`]
/// batches are timed.
fn bench<R>(filter: &str, name: &str, mut f: impl FnMut() -> R) {
    if !name.contains(filter) {
        return;
    }
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        if start.elapsed() >= BATCH_TARGET || iters >= MAX_ITERS {
            break;
        }
        iters *= 2;
    }
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    println!("{name:<34} {median:>14.1} ns/iter   ({iters} iters/batch, {SAMPLES} batches)");
}

fn data_packet(payload_len: usize) -> Packet {
    Packet::Data {
        dst: Address::new(2),
        src: Address::new(1),
        id: 7,
        fwd: Forwarding {
            via: Address::new(2),
            ttl: 10,
        },
        payload: vec![0xA5; payload_len],
    }
}

fn hello_packet(entries: usize) -> Packet {
    Packet::Hello {
        src: Address::new(1),
        id: 7,
        role: 0,
        entries: (0..entries)
            .map(|i| RouteEntry {
                address: Address::new(100 + i as u16),
                metric: (i % 15) as u8 + 1,
                role: 0,
            })
            .collect(),
    }
}

fn bench_codec(filter: &str) {
    for len in [16usize, 64, 200] {
        let packet = data_packet(len);
        let wire = codec::encode(&packet).unwrap();
        bench(filter, &format!("codec/encode_data_{len}B"), || {
            codec::encode(std::hint::black_box(&packet)).unwrap()
        });
        bench(filter, &format!("codec/decode_data_{len}B"), || {
            codec::decode(std::hint::black_box(&wire)).unwrap()
        });
    }
    let hello = hello_packet(30);
    let wire = codec::encode(&hello).unwrap();
    bench(filter, "codec/encode_hello_30_routes", || {
        codec::encode(std::hint::black_box(&hello)).unwrap()
    });
    bench(filter, "codec/decode_hello_30_routes", || {
        codec::decode(std::hint::black_box(&wire)).unwrap()
    });
}

fn bench_routing(filter: &str) {
    for n in [8usize, 32, 61] {
        let me = Address::new(1);
        let neighbour = Address::new(2);
        let entries: Vec<RouteEntry> = (0..n)
            .map(|i| RouteEntry {
                address: Address::new(100 + i as u16),
                metric: (i % 14) as u8 + 1,
                role: 0,
            })
            .collect();
        bench(filter, &format!("routing/apply_hello_{n}_entries"), || {
            let mut table = RoutingTable::new();
            table.apply_hello(me, neighbour, 0, &entries, 5.0, Duration::from_secs(1));
            table
        });
        let mut table = RoutingTable::new();
        table.apply_hello(me, neighbour, 0, &entries, 5.0, Duration::from_secs(1));
        bench(filter, &format!("routing/next_hop_of_{n}"), || {
            table.next_hop(std::hint::black_box(Address::new(100 + (n as u16) / 2)))
        });
    }
}

fn bench_airtime(filter: &str) {
    for sf in [SpreadingFactor::Sf7, SpreadingFactor::Sf12] {
        let m = LoRaModulation::new(sf, Bandwidth::Khz125, CodingRate::Cr4_5);
        bench(
            filter,
            &format!("airtime/time_on_air_SF{}", sf.value()),
            || m.time_on_air(std::hint::black_box(64)),
        );
    }
}

fn bench_rng(filter: &str) {
    let mut rng = SimRng::new(1);
    bench(filter, "rng/next_u64", || rng.next_u64());
    let mut rng = SimRng::new(1);
    bench(filter, "rng/gen_range_1000", || rng.gen_range(1000));
}

fn bench_simulator(filter: &str) {
    // Simulated minutes of a 9-node mesh per iteration: measures event
    // throughput of the whole stack.
    bench(filter, "simulator/grid9_mesh_60s_simulated", || {
        let spacing = topology::radio_range_m(&radio_sim::sim::SimConfig::default().rf) * 0.8;
        let mut runner = NetworkBuilder::mesh(topology::grid(3, 3, spacing), 42).build();
        runner.run_until(Duration::from_secs(60));
        runner.phy_metrics().frames_transmitted
    });
    bench(filter, "simulator/line4_convergence", || {
        let spacing = topology::radio_range_m(&radio_sim::sim::SimConfig::default().rf) * 0.8;
        let mut runner = NetworkBuilder::mesh(topology::line(4, spacing), 42).build();
        runner.run_until_converged(Duration::from_secs(2), Duration::from_secs(600))
    });
}

fn bench_medium(filter: &str) {
    use radio_sim::medium::{Medium, RfConfig};
    let medium = Medium::new(RfConfig::default());
    let a = Position::new(0.0, 0.0);
    let b = Position::new(250.0, 100.0);
    bench(filter, "medium/received_power", || {
        medium.received_power(
            std::hint::black_box(&a),
            std::hint::black_box(&b),
            radio_sim::firmware::NodeId(0),
            radio_sim::firmware::NodeId(1),
        )
    });
    bench(filter, "medium/dbm_to_milliwatts", || {
        std::hint::black_box(lora_phy::power::Dbm::new(-87.3)).to_milliwatts()
    });
    bench(filter, "medium/capture_ratio_linear", || {
        std::hint::black_box(medium.config()).capture_ratio_linear()
    });
}

fn bench_queue(filter: &str) {
    use radio_sim::event::{EventQueue, SimEvent};
    use radio_sim::time::SimTime;
    use radio_sim::NodeId;

    // Schedule+pop through a queue pre-loaded with `pending` events, the
    // steady-state shape of an N-node run: cost of the calendar ring's
    // bucket lookup and cursor scan at several fill levels.
    for pending in [16usize, 256, 4096] {
        let mut q = EventQueue::new();
        let mut t: u64 = 0;
        for i in 0..pending {
            t += 11_311; // ≈11 µs apart: spread over a few buckets
            q.schedule(SimTime::from_micros(t / 1000), SimEvent::App(NodeId(i), 0));
        }
        let mut now = t;
        bench(
            filter,
            &format!("queue/schedule_pop_at_{pending}_pending"),
            || {
                now += 11_311;
                q.schedule(SimTime::from_micros(now / 1000), SimEvent::MobilityTick);
                q.pop()
            },
        );
    }
    // The timer churn path: reschedule (tombstoning the previous wake)
    // then pop — the O(1) stale-drop the generation stamps buy.
    let mut q = EventQueue::new();
    let mut now_us: u64 = 0;
    bench(filter, "queue/timer_reschedule_pop", || {
        now_us += 500;
        q.schedule_timer(SimTime::from_micros(now_us), NodeId(0));
        q.schedule_timer(SimTime::from_micros(now_us + 100), NodeId(0));
        q.pop()
    });
}

fn bench_link_cache(filter: &str) {
    // The same PHY-only beacon workload with the link cache on and off:
    // the gap is what the cache + audible-neighbor culling buys on the
    // start_tx / lock_receiver hot path.
    bench(filter, "simulator/beacon_grid64_10s_cached", || {
        bench::scaling::run(64, true, 1, 10, 42).1
    });
    bench(filter, "simulator/beacon_grid64_10s_uncached", || {
        bench::scaling::run(64, false, 1, 10, 42).1
    });
    bench(filter, "simulator/beacon_grid64_10s_sharded4", || {
        bench::scaling::run(64, true, 4, 10, 42).1
    });
}

fn main() {
    // `cargo bench` appends `--bench`; any other non-flag argument is a
    // substring filter on benchmark names.
    let filter = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_default();
    bench_codec(&filter);
    bench_routing(&filter);
    bench_airtime(&filter);
    bench_rng(&filter);
    bench_simulator(&filter);
    bench_medium(&filter);
    bench_queue(&filter);
    bench_link_cache(&filter);
}
