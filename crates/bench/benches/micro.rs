//! Criterion micro-benchmarks for the hot paths of the stack:
//! wire codec, routing-table updates, time-on-air math, the simulation
//! PRNG, and end-to-end simulator throughput.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use lora_phy::modulation::{Bandwidth, CodingRate, LoRaModulation, SpreadingFactor};
use lora_phy::propagation::Position;
use loramesher::addr::Address;
use loramesher::codec;
use loramesher::packet::{Forwarding, Packet, RouteEntry};
use loramesher::routing::RoutingTable;
use radio_sim::rng::SimRng;
use radio_sim::topology;
use scenario::runner::NetworkBuilder;

fn data_packet(payload_len: usize) -> Packet {
    Packet::Data {
        dst: Address::new(2),
        src: Address::new(1),
        id: 7,
        fwd: Forwarding { via: Address::new(2), ttl: 10 },
        payload: vec![0xA5; payload_len],
    }
}

fn hello_packet(entries: usize) -> Packet {
    Packet::Hello {
        src: Address::new(1),
        id: 7,
        role: 0,
        entries: (0..entries)
            .map(|i| RouteEntry {
                address: Address::new(100 + i as u16),
                metric: (i % 15) as u8 + 1,
                role: 0,
            })
            .collect(),
    }
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    for len in [16usize, 64, 200] {
        let packet = data_packet(len);
        let wire = codec::encode(&packet).unwrap();
        g.throughput(Throughput::Bytes(wire.len() as u64));
        g.bench_function(format!("encode_data_{len}B"), |b| {
            b.iter(|| codec::encode(std::hint::black_box(&packet)).unwrap())
        });
        g.bench_function(format!("decode_data_{len}B"), |b| {
            b.iter(|| codec::decode(std::hint::black_box(&wire)).unwrap())
        });
    }
    let hello = hello_packet(30);
    let wire = codec::encode(&hello).unwrap();
    g.bench_function("encode_hello_30_routes", |b| {
        b.iter(|| codec::encode(std::hint::black_box(&hello)).unwrap())
    });
    g.bench_function("decode_hello_30_routes", |b| {
        b.iter(|| codec::decode(std::hint::black_box(&wire)).unwrap())
    });
    g.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut g = c.benchmark_group("routing");
    for n in [8usize, 32, 61] {
        let me = Address::new(1);
        let neighbour = Address::new(2);
        let entries: Vec<RouteEntry> = (0..n)
            .map(|i| RouteEntry {
                address: Address::new(100 + i as u16),
                metric: (i % 14) as u8 + 1,
                role: 0,
            })
            .collect();
        g.bench_function(format!("apply_hello_{n}_entries"), |b| {
            b.iter_batched(
                RoutingTable::new,
                |mut table| {
                    table.apply_hello(me, neighbour, 0, &entries, 5.0, Duration::from_secs(1))
                },
                BatchSize::SmallInput,
            )
        });
        let mut table = RoutingTable::new();
        table.apply_hello(me, neighbour, 0, &entries, 5.0, Duration::from_secs(1));
        g.bench_function(format!("next_hop_of_{n}"), |b| {
            b.iter(|| table.next_hop(std::hint::black_box(Address::new(100 + (n as u16) / 2))))
        });
    }
    g.finish();
}

fn bench_airtime(c: &mut Criterion) {
    let mut g = c.benchmark_group("airtime");
    for sf in [SpreadingFactor::Sf7, SpreadingFactor::Sf12] {
        let m = LoRaModulation::new(sf, Bandwidth::Khz125, CodingRate::Cr4_5);
        g.bench_function(format!("time_on_air_SF{}", sf.value()), |b| {
            b.iter(|| m.time_on_air(std::hint::black_box(64)))
        });
    }
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.bench_function("next_u64", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| rng.next_u64())
    });
    g.bench_function("gen_range_1000", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| rng.gen_range(1000))
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    // Simulated minutes of a 9-node mesh per iteration: measures event
    // throughput of the whole stack.
    g.bench_function("grid9_mesh_60s_simulated", |b| {
        b.iter(|| {
            let spacing = topology::radio_range_m(
                &radio_sim::sim::SimConfig::default().rf,
            ) * 0.8;
            let mut runner = NetworkBuilder::mesh(topology::grid(3, 3, spacing), 42).build();
            runner.run_until(Duration::from_secs(60));
            std::hint::black_box(runner.phy_metrics().frames_transmitted)
        })
    });
    g.bench_function("line4_convergence", |b| {
        b.iter(|| {
            let spacing = topology::radio_range_m(
                &radio_sim::sim::SimConfig::default().rf,
            ) * 0.8;
            let mut runner = NetworkBuilder::mesh(topology::line(4, spacing), 42).build();
            std::hint::black_box(
                runner.run_until_converged(Duration::from_secs(2), Duration::from_secs(600)),
            )
        })
    });
    g.finish();
}

fn bench_medium(c: &mut Criterion) {
    use radio_sim::medium::{Medium, RfConfig};
    let mut g = c.benchmark_group("medium");
    let medium = Medium::new(RfConfig::default());
    let a = Position::new(0.0, 0.0);
    let b = Position::new(250.0, 100.0);
    g.bench_function("received_power", |bch| {
        bch.iter(|| {
            medium.received_power(
                std::hint::black_box(&a),
                std::hint::black_box(&b),
                radio_sim::firmware::NodeId(0),
                radio_sim::firmware::NodeId(1),
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_codec,
    bench_routing,
    bench_airtime,
    bench_rng,
    bench_simulator,
    bench_medium
);
criterion_main!(benches);
