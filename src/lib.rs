//! Umbrella crate for the `loramesher-rs` workspace.
//!
//! Re-exports the workspace crates so the root `examples/` and `tests/`
//! can exercise the whole stack through one import. Library users should
//! depend on the individual crates ([`loramesher`], [`radio_sim`],
//! [`lora_phy`], [`mesh_baselines`], [`scenario`]) directly.

pub use lora_phy;
pub use loramesher;
pub use mesh_baselines;
pub use radio_sim;
pub use scenario;
