//! Sensor field: the IoT workload the paper's introduction motivates.
//!
//! Sixteen battery-powered sensors are scattered over a field; only some
//! are within radio range of the collector. Each sensor periodically
//! reports a 16-byte reading to the collector (node 0). The mesh routes
//! every report over multiple hops — something the LoRaWAN star model
//! cannot do without extra gateways — and the example also prints an
//! energy estimate per node from the radio's state accounting.
//!
//! Run with:
//!
//! ```text
//! cargo run --example sensor_field
//! ```

use std::time::Duration;

use loramesher_repro::lora_phy::battery::{Battery, ConsumptionProfile};
use loramesher_repro::lora_phy::power::EnergyModel;
use loramesher_repro::radio_sim::rng::SimRng;
use loramesher_repro::radio_sim::topology;
use loramesher_repro::scenario::experiments::default_spacing;
use loramesher_repro::scenario::runner::NetworkBuilder;
use loramesher_repro::scenario::workload;

const SENSORS: usize = 16;

fn main() {
    let spacing = default_spacing();
    let side = spacing * (SENSORS as f64).sqrt() * 0.85;
    let mut rng = SimRng::new(7);
    let positions = topology::connected_random(SENSORS, side, side, spacing, &mut rng, 2000)
        .expect("connected field");
    println!("{SENSORS} sensors over a {side:.0} m × {side:.0} m field; collector at node 0\n");

    let mut net = NetworkBuilder::mesh(positions, 7).build();
    let converged = net
        .run_until_converged(Duration::from_secs(5), Duration::from_secs(1800))
        .expect("field must converge");
    println!("Mesh converged in {:.0} s.", converged.as_secs_f64());

    // Hop distribution from the collector's perspective.
    let collector = net.mesh_node(0).unwrap();
    let mut hops: Vec<u8> = collector
        .routing_table()
        .routes()
        .map(|r| r.metric)
        .collect();
    hops.sort_unstable();
    println!(
        "Collector reaches {} sensors; hop counts: {:?}",
        hops.len(),
        hops
    );

    // One hour of periodic reporting: every sensor reports each 5 min.
    let start = net.now() + Duration::from_secs(10);
    net.apply(&workload::all_to_one(
        SENSORS,
        0,
        16,
        start,
        Duration::from_secs(300),
        12,
    ));
    net.run_until(start + Duration::from_secs(3600) + Duration::from_secs(120));

    let report = net.report();
    println!("\nOne hour of sensor reports:");
    println!("  reports sent      : {}", report.sent);
    println!("  reports delivered : {}", report.delivered);
    println!(
        "  delivery ratio    : {:.1} %",
        report.pdr().unwrap_or(0.0) * 100.0
    );
    println!(
        "  mean latency      : {:.0} ms",
        report
            .mean_latency()
            .map_or(0.0, |d| d.as_secs_f64() * 1000.0)
    );
    println!(
        "  network airtime   : {:.1} s ({:.2} % of the hour)",
        report.total_airtime.as_secs_f64(),
        report.channel_utilisation() * 100.0
    );

    // Energy: finalise radio accounting and price each node's hour.
    net.sim_mut().finish();
    let model = EnergyModel::default();
    let mut worst = (0usize, 0.0f64);
    let mut total = 0.0;
    for i in 0..net.len() {
        let durations = net.sim().radio(net.id(i)).durations;
        let millijoules = model.energy_millijoules(&durations);
        total += millijoules;
        if millijoules > worst.1 {
            worst = (i, millijoules);
        }
    }
    println!("\nEnergy over the run (SX1276 @3.3 V, receiver always on):");
    println!("  mean per node : {:.0} mJ", total / net.len() as f64);
    println!("  busiest node  : node {} at {:.0} mJ", worst.0, worst.1);

    // What does that mean for a battery-powered deployment?
    let durations = net.sim().radio(net.id(worst.0)).durations;
    if let Some(profile) = ConsumptionProfile::from_durations(&model, &durations) {
        let life = profile.lifetime_on(&Battery::cell_18650());
        println!(
            "  busiest node draws {:.1} mA on average ({:.0} % of it listening);",
            profile.average_milliamps,
            profile.rx_share * 100.0
        );
        println!(
            "  one 18650 cell would last ~{:.1} days as a mesh router.",
            life.as_secs_f64() / 86_400.0
        );
    }
    println!("  (receive-mode listening dominates — the known cost of an");
    println!("   always-on LoRa mesh, as the paper notes for future work)");
}
