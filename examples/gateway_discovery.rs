//! Gateway discovery through node roles.
//!
//! LoRaMesher hellos carry a role byte, so infrastructure announces
//! itself through the same broadcasts that build the routing table: no
//! provisioning, no directory service. Here a 10-node field contains one
//! Internet gateway; every sensor discovers it (address *and* hop
//! distance) purely from routing state and uploads its readings there.
//!
//! Run with:
//!
//! ```text
//! cargo run --example gateway_discovery
//! ```

use std::time::Duration;

use loramesher_repro::loramesher::{Role, RoleQueries};
use loramesher_repro::radio_sim::rng::SimRng;
use loramesher_repro::radio_sim::topology;
use loramesher_repro::scenario::experiments::default_spacing;
use loramesher_repro::scenario::runner::NetworkBuilder;
use loramesher_repro::scenario::workload;

const NODES: usize = 10;
const GATEWAY: usize = 7;

fn main() {
    let spacing = default_spacing();
    let side = spacing * (NODES as f64).sqrt() * 0.85;
    let mut rng = SimRng::new(23);
    let positions = topology::connected_random(NODES, side, side, spacing, &mut rng, 2000)
        .expect("connected field");

    // Only the gateway's configuration differs: one role bit.
    let mut roles = vec![0u8; NODES];
    roles[GATEWAY] = Role::GATEWAY.bits();

    let mut net = NetworkBuilder::mesh(positions, 23).roles(roles).build();
    let converged = net
        .run_until_converged(Duration::from_secs(5), Duration::from_secs(1800))
        .expect("field converges");
    println!(
        "{NODES}-node field converged in {:.0} s; node {GATEWAY} advertises the GATEWAY role.\n",
        converged.as_secs_f64()
    );

    // Every node discovers the gateway from its routing table alone.
    println!("gateway as seen by each node:");
    for i in 0..NODES {
        if i == GATEWAY {
            continue;
        }
        let table = net.mesh_node(i).unwrap().routing_table();
        match table.closest_gateway() {
            Some(gw) => {
                let route = table.route(gw).unwrap();
                println!(
                    "  node {i}: gateway {gw} at {} hop(s) via {}",
                    route.metric, route.via
                );
            }
            None => println!("  node {i}: no gateway known (!)"),
        }
    }

    // Sensors upload to the *discovered* address — here they all found
    // node 7, so the workload targets it.
    let start = net.now() + Duration::from_secs(5);
    net.apply(&workload::all_to_one(
        NODES,
        GATEWAY,
        24,
        start,
        Duration::from_secs(60),
        5,
    ));
    net.run_until(start + Duration::from_secs(5 * 60 + 120));
    let report = net.report();
    println!(
        "\nuploads: {} sent, {} delivered to the gateway (PDR {:.1} %)",
        report.sent,
        report.delivered,
        report.pdr().unwrap_or(0.0) * 100.0
    );
}
