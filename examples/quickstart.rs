//! Quickstart: a three-node LoRa mesh in a simulated field.
//!
//! Reproduces the demo paper's core claim end to end: three nodes where
//! the endpoints cannot hear each other form a mesh by exchanging routing
//! broadcasts, and a data packet then travels through the middle node,
//! which acts as a router.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::time::Duration;

use loramesher_repro::lora_phy::propagation::Position;
use loramesher_repro::radio_sim::topology;
use loramesher_repro::scenario::experiments::default_spacing;
use loramesher_repro::scenario::runner::NetworkBuilder;
use loramesher_repro::scenario::workload::{self, Target};

fn main() {
    // Three nodes on a line, each spaced at ~80 % of the SF7 radio range:
    // node 0 and node 2 are out of range of each other.
    let spacing = default_spacing();
    let positions: Vec<Position> = topology::line(3, spacing);
    println!("Placing 3 nodes {spacing:.0} m apart (SF7/125 kHz, urban propagation)\n");

    let mut net = NetworkBuilder::mesh(positions, 42).build();

    // Let the periodic routing broadcasts (hellos) build the mesh.
    let converged = net
        .run_until_converged(Duration::from_secs(2), Duration::from_secs(600))
        .expect("mesh must converge");
    println!(
        "Mesh converged after {:.0} s of simulated time.",
        converged.as_secs_f64()
    );

    // Show each node's routing table — the state the demo visualises.
    for i in 0..net.len() {
        let mesh = net.mesh_node(i).expect("mesh protocol");
        println!("\nRouting table of node {} ({}):", i, mesh.address());
        println!("  destination  via   metric");
        for route in mesh.routing_table().routes() {
            println!(
                "         {}  {}        {}",
                route.destination, route.via, route.metric
            );
        }
    }

    // Send a datagram from one end to the other: node 1 relays it.
    let start = net.now() + Duration::from_secs(1);
    net.apply(&workload::periodic(
        0,
        Target::Node(2),
        16,
        start,
        Duration::from_secs(10),
        3,
    ));
    net.run_until(start + Duration::from_secs(60));

    let report = net.report();
    println!(
        "\nSent {} datagrams from node 0 to node 2 (2 hops):",
        report.sent
    );
    println!("  delivered : {}", report.delivered);
    println!(
        "  mean end-to-end latency : {:.1} ms",
        report.mean_latency().expect("delivered").as_secs_f64() * 1000.0
    );
    println!(
        "  packets relayed by node 1 : {}",
        net.mesh_node(1).unwrap().stats().forwarded
    );
}
