//! Bulk transfer: moving a firmware-update-sized payload through the
//! mesh with the reliable large-payload service.
//!
//! LoRa frames carry at most ~250 bytes, so anything bigger must be
//! fragmented, acknowledged and retransmitted. This example pushes a
//! 6 KiB blob across a lossy 2-hop path and shows the SYNC / fragment /
//! ACK / LOST machinery doing its job.
//!
//! Run with:
//!
//! ```text
//! cargo run --example bulk_transfer
//! ```

use std::time::Duration;

use loramesher_repro::radio_sim::sim::SimConfig;
use loramesher_repro::radio_sim::topology;
use loramesher_repro::scenario::runner::NetworkBuilder;
use loramesher_repro::scenario::workload;

const PAYLOAD: usize = 6 * 1024;

fn main() {
    // Lossy links: grey-zone reception at ~88 % of the radio range.
    let mut sim = SimConfig::default();
    sim.rf.grey_zone = true;
    let spacing = topology::radio_range_m(&sim.rf) * 0.88;
    let mut net = NetworkBuilder::mesh(topology::line(3, spacing), 11)
        .sim_config(sim)
        .build();

    net.run_until_converged(Duration::from_secs(5), Duration::from_secs(1800))
        .expect("line must converge");
    println!("3-node line converged; links are deliberately marginal.\n");

    let at = net.now() + Duration::from_secs(1);
    net.schedule(workload::bulk(0, 2, PAYLOAD, at));
    println!("Sending {PAYLOAD} bytes from node 0 to node 2 (2 hops)...");

    // Watch the transfer progress.
    let deadline = at + Duration::from_secs(600);
    let mut last_count = usize::MAX;
    while net.now() < deadline {
        net.run_for(Duration::from_secs(5));
        let receiver = net.mesh_node(2).unwrap();
        if let Some(&(_, _, received, total)) = receiver.inbound_transfers().first() {
            if received != last_count {
                println!(
                    "  t = {:>4.0} s: {received}/{total} fragments at the receiver",
                    net.now().as_secs_f64()
                );
                last_count = received;
            }
        }
        let report = net.report();
        if report.reliable_completed + report.reliable_failed > 0 {
            break;
        }
    }

    let report = net.report();
    let sender = net.mesh_node(0).unwrap().stats();
    println!();
    match report.reliable_latencies.first() {
        Some(d) => {
            println!("Transfer completed in {:.1} s.", d.as_secs_f64());
            println!(
                "  goodput          : {:.0} B/s",
                PAYLOAD as f64 / d.as_secs_f64()
            );
        }
        None => println!("Transfer FAILED (links too lossy this run)."),
    }
    println!("  retransmissions  : {}", sender.reliable_retransmits);
    println!(
        "  frames forwarded by the relay : {}",
        net.mesh_node(1).unwrap().stats().forwarded
    );
    println!(
        "  network airtime  : {:.1} s",
        report.total_airtime.as_secs_f64()
    );
}
