//! Hosting `MeshNode` without the simulator — the hardware-shim pattern.
//!
//! The protocol core is sans-IO: it never touches a radio, a clock or a
//! thread. This example plays the role of the firmware main loop on a
//! real board — it owns time, delivers radio events, and executes the
//! node's requests — using an idealised "cable" between two nodes (every
//! frame arrives after its exact time-on-air, channel always clear). On
//! hardware, the same loop shape is driven by the SX127x DIO interrupts
//! and a timer instead.
//!
//! Run with:
//!
//! ```text
//! cargo run --example manual_host
//! ```

use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Duration;

use loramesher_repro::lora_phy::link::SignalQuality;
use loramesher_repro::loramesher::{
    Address, MeshConfig, MeshEvent, MeshNode, NodeProtocol, RadioIo, RadioRequest,
};

/// A pending event on the cable: a frame arriving, or a CAD finishing.
#[derive(PartialEq, Eq)]
enum HostEvent {
    FrameArrives { at_node: usize, bytes: Arc<[u8]> },
    CadDone { at_node: usize },
    TxDone { at_node: usize },
}

/// Time-ordered queue entry (min-heap via reversed ordering).
struct Scheduled(Duration, u64, HostEvent);
impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0 && self.1 == other.1
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.0, other.1).cmp(&(self.0, self.1))
    }
}

fn main() {
    let mut nodes = [
        MeshNode::new(MeshConfig::builder(Address::new(0x0001)).build()),
        MeshNode::new(MeshConfig::builder(Address::new(0x0002)).build()),
    ];
    let modulation = nodes[0].config().modulation;
    let mut queue: BinaryHeap<Scheduled> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut now = Duration::ZERO;
    let mut sent_app_message = false;

    // Boot both nodes.
    for node in &mut nodes {
        let mut io = RadioIo::new(now);
        node.on_start(&mut io);
        assert!(io.take_requests().is_empty(), "nothing to transmit at boot");
    }

    println!("Two sans-IO nodes on an ideal cable; running the host loop...\n");
    // The host loop: wait for the earliest of (next queued event, next
    // protocol wake-up), deliver it, execute the requests.
    for _step in 0..10_000 {
        // When is the next thing due?
        let next_wake = nodes
            .iter()
            .filter_map(|n| n.next_wake())
            .min()
            .map(|w| w.max(now));
        let next_event = queue.peek().map(|s| s.0);
        let Some(next) = [next_wake, next_event].into_iter().flatten().min() else {
            break; // nothing scheduled at all
        };
        now = next.max(now);

        // Deliver due cable events first.
        let mut requests_by_node: Vec<(usize, Vec<RadioRequest>)> = Vec::new();
        while queue.peek().is_some_and(|s| s.0 <= now) {
            let Scheduled(_, _, event) = queue.pop().unwrap();
            let mut io = RadioIo::new(now);
            match event {
                HostEvent::FrameArrives { at_node, bytes } => {
                    nodes[at_node].on_frame(&bytes, SignalQuality::ideal(), &mut io);
                    requests_by_node.push((at_node, io.take_requests()));
                }
                HostEvent::CadDone { at_node } => {
                    // The cable is a clear channel by construction.
                    nodes[at_node].on_cad_done(false, &mut io);
                    requests_by_node.push((at_node, io.take_requests()));
                }
                HostEvent::TxDone { at_node } => {
                    nodes[at_node].on_tx_done(&mut io);
                    requests_by_node.push((at_node, io.take_requests()));
                }
            }
        }
        // Then fire due protocol timers.
        for (i, node) in nodes.iter_mut().enumerate() {
            if node.next_wake().is_some_and(|w| w <= now) {
                let mut io = RadioIo::new(now);
                node.on_timer(&mut io);
                requests_by_node.push((i, io.take_requests()));
            }
        }
        // Execute the requests: schedule CAD completions and deliveries.
        for (i, requests) in requests_by_node {
            for request in requests {
                match request {
                    RadioRequest::StartCad => {
                        seq += 1;
                        queue.push(Scheduled(
                            now + modulation.symbol_time() * 2,
                            seq,
                            HostEvent::CadDone { at_node: i },
                        ));
                    }
                    RadioRequest::Transmit(bytes) => {
                        let airtime = modulation.time_on_air(bytes.len());
                        seq += 1;
                        queue.push(Scheduled(
                            now + airtime,
                            seq,
                            HostEvent::FrameArrives {
                                at_node: 1 - i,
                                bytes,
                            },
                        ));
                        seq += 1;
                        queue.push(Scheduled(
                            now + airtime,
                            seq,
                            HostEvent::TxDone { at_node: i },
                        ));
                    }
                }
            }
        }

        // The "application": once a route exists, node 0 pings node 1.
        if !sent_app_message
            && nodes[0]
                .routing_table()
                .next_hop(Address::new(0x0002))
                .is_some()
        {
            sent_app_message = true;
            println!(
                "t = {:>6.2} s: route learned; node 0 sends a datagram",
                now.as_secs_f64()
            );
            nodes[0]
                .send_datagram(
                    Address::new(0x0002),
                    b"hello from a bare host".to_vec(),
                    now,
                )
                .expect("route exists");
        }
        for event in nodes[1].take_events() {
            if let MeshEvent::Datagram { src, payload } = event {
                println!(
                    "t = {:>6.2} s: node 1 received {:?} from {src}",
                    now.as_secs_f64(),
                    String::from_utf8_lossy(&payload)
                );
                println!("\nThe same MeshNode code runs under the discrete-event");
                println!("simulator and on real hardware behind a loop like this.");
                return;
            }
        }
    }
    unreachable!("the datagram should have been delivered");
}
