//! Node churn: routers failing and recovering under live traffic.
//!
//! A diamond topology gives the mesh a redundant relay. Mid-run, the
//! relay in use is killed; the routing protocol notices (the dead route
//! ages out) and repairs the path through the other relay. Later the
//! node comes back and is re-absorbed into the mesh. Traffic flows the
//! whole time, so the delivery gap is exactly the repair window.
//!
//! Run with:
//!
//! ```text
//! cargo run --example node_churn
//! ```

use std::time::Duration;

use loramesher_repro::lora_phy::propagation::Position;
use loramesher_repro::scenario::experiments::default_spacing;
use loramesher_repro::scenario::runner::{NetworkBuilder, ProtocolChoice, Runner};
use loramesher_repro::scenario::workload::{self, Target};

fn main() {
    // Diamond: 0 -(1 or 2)- 3.
    let s = default_spacing() * 0.9;
    let positions = vec![
        Position::new(0.0, 0.0),
        Position::new(s * 0.85, s * 0.5),
        Position::new(s * 0.85, -s * 0.5),
        Position::new(s * 1.7, 0.0),
    ];
    // Fast timers so the example finishes quickly: 10 s hellos, 60 s
    // route timeout.
    let mut net = NetworkBuilder::mesh(positions, 5)
        .protocol(ProtocolChoice::Mesh {
            hello_interval: Duration::from_secs(10),
            route_timeout: Duration::from_secs(60),
        })
        .build();
    net.run_until_converged(Duration::from_secs(2), Duration::from_secs(600))
        .expect("diamond converges");

    let dst = Runner::address_of(3);
    let via = net
        .mesh_node(0)
        .unwrap()
        .routing_table()
        .next_hop(dst)
        .unwrap();
    let victim = usize::from(via.value()) - 1;
    println!("Converged. Node 0 reaches node 3 via node {victim}; killing it mid-run.\n");

    // Continuous traffic: one report every 5 s for 5 minutes.
    let start = net.now() + Duration::from_secs(1);
    net.apply(&workload::periodic(
        0,
        Target::Node(3),
        16,
        start,
        Duration::from_secs(5),
        60,
    ));

    let kill_at = start + Duration::from_secs(30);
    let revive_at = kill_at + Duration::from_secs(150);
    let victim_id = net.id(victim);
    net.sim_mut().schedule_kill(kill_at, victim_id);
    net.sim_mut().schedule_revive(revive_at, victim_id);

    // Observe the route at 1 Hz.
    let mut repaired_at = None;
    let end = start + Duration::from_secs(310);
    while net.now() < end {
        net.run_for(Duration::from_secs(1));
        let hop = net.mesh_node(0).unwrap().routing_table().next_hop(dst);
        if repaired_at.is_none() && net.now() > kill_at {
            if let Some(h) = hop {
                if h != via {
                    repaired_at = Some(net.now());
                    println!(
                        "t = {:>5.0} s: route repaired — node 0 now reaches node 3 via node {}",
                        net.now().as_secs_f64(),
                        usize::from(h.value()) - 1
                    );
                }
            }
        }
    }

    let report = net.report();
    println!("\nTimeline:");
    println!(
        "  node {victim} killed at  t = {:.0} s",
        kill_at.as_secs_f64()
    );
    match repaired_at {
        Some(t) => println!(
            "  route repaired at  t = {:.0} s ({:.0} s outage)",
            t.as_secs_f64(),
            (t - kill_at).as_secs_f64()
        ),
        None => println!("  route was never repaired!"),
    }
    println!(
        "  node {victim} revived at t = {:.0} s",
        revive_at.as_secs_f64()
    );
    println!("\nTraffic during the run:");
    println!("  sent      : {}", report.sent);
    println!("  delivered : {}", report.delivered);
    println!(
        "  delivery ratio : {:.1} % (the gap is the repair window)",
        report.pdr().unwrap_or(0.0) * 100.0
    );
}
