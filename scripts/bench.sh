#!/usr/bin/env bash
# Perf trajectory for the simulator hot path: runs the static-grid
# scaling benchmark — link cache on vs off at N ∈ {16, 64, 256, 1024},
# the sharded event engine at N ∈ {4096, 16384} × shards {1, 4, 8}
# (sparse spatial-grid rows, occupancy-weighted bands), the threaded
# mobile variant at 4096 nodes × threads {1, 2, 4}, plus the parallel
# batch commit (PR 9) on far-apart beacon clusters at N ∈ {4096, 16384}
# × shards {4, 8} × threads {1, 2, 4} — and writes BENCH_PR9.json at
# the repo root so future PRs can compare (BENCH_PR2/4/6/7.json are
# earlier baselines). Every section asserts identical metrics and event
# counts across its engine rows; the commit section additionally
# asserts every threaded leg really committed parallel batches.
# Extra arguments are passed through (e.g. --secs 60, --seed 7).
#
#   ./scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline -p bench --bin bench_scaling"
cargo build --release --offline -p bench --bin bench_scaling

echo "==> bench_scaling --out BENCH_PR9.json"
./target/release/bench_scaling --out BENCH_PR9.json "$@"
