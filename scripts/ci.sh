#!/usr/bin/env bash
# Tier-1 gate for the repository: formatting, the static-analysis wall
# (clippy -D warnings + meshlint), a fully offline release build, and
# the fully offline test suite. Run from anywhere; no network access is
# required (the workspace has no registry dependencies).
#
#   ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release --offline --workspace"
cargo build --release --offline --workspace

echo "==> cargo build --offline --examples (host-integration examples)"
cargo build --offline --examples

echo "==> cargo build -p loramesher -p lora-phy --no-default-features --offline (no_std feature leg)"
cargo build -p loramesher -p lora-phy --no-default-features --offline

echo "==> cargo clippy --offline --workspace --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> meshlint (determinism & robustness rules, ratcheted)"
cargo run -q --release --offline -p meshlint -- --root . --baseline meshlint.baseline

echo "==> cargo test -q --offline -p meshlint (analyzer unit + fixture suite)"
cargo test -q --offline -p meshlint

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> cargo test -q --offline -p loramesher --features crypto (AES-CTR flood payload encryption leg)"
cargo test -q --offline -p loramesher --features crypto

echo "==> bench_scaling --smoke (link-cache + sharded-engine transparency smoke)"
cargo run --release --offline -p bench --bin bench_scaling -- --smoke

echo "==> meshsim --shards 4 smoke (sharded engine through the CLI)"
cargo run -q --release --offline -p meshsim -- --nodes 12 --duration 120 --shards 4 >/dev/null

echo "==> meshsim --shards 4 --threads 2 --rng-streams smoke (parallel batch commit through the CLI)"
cargo run -q --release --offline -p meshsim -- --nodes 12 --duration 120 --shards 4 --threads 2 --rng-streams >/dev/null

echo "==> meshsim --protocol flooding --shards 4 --threads 2 --rng-streams smoke (flooding stack on the parallel engine)"
cargo run -q --release --offline -p meshsim -- --protocol flooding --nodes 12 --duration 120 --shards 4 --threads 2 --rng-streams >/dev/null

echo "ci: all checks passed"
