#!/usr/bin/env bash
# Regenerates experiment E13 — LoRaMesher vs. managed flooding on the
# same placements, seeds and workloads, at 64–1024 nodes under the
# Meshtastic LongFast and LongSlow modem presets — entirely offline.
# The markdown table feeds the E13 section of EXPERIMENTS.md.
#
# Extra arguments are passed through:
#   ./scripts/head_to_head.sh                      # full sweep
#   ./scripts/head_to_head.sh --quick              # shrunk (seconds)
#   ./scripts/head_to_head.sh --seeds 5 --jobs 4   # replicated
#   ./scripts/head_to_head.sh --protocol flooding  # one stack only
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline -p bench --bin exp_e13"
cargo build --release --offline -p bench --bin exp_e13

echo "==> exp_e13 $*"
./target/release/exp_e13 "$@"
