#!/usr/bin/env bash
# Static-analysis gate: the clippy lint wall plus the project-specific
# meshlint determinism/robustness rules, ratcheted against the committed
# baseline. Run from anywhere; fully offline.
#
#   ./scripts/lint.sh [--json [FILE]]
#
# With --json, the meshlint report is additionally written as a JSON
# artifact (default: target/meshlint.json) before the gating text run,
# so CI can collect it even when the gate fails.
set -euo pipefail
cd "$(dirname "$0")/.."

JSON_OUT=""
if [[ "${1:-}" == "--json" ]]; then
    JSON_OUT="${2:-target/meshlint.json}"
elif [[ $# -gt 0 ]]; then
    echo "usage: $0 [--json [FILE]]" >&2
    exit 2
fi

run_meshlint() {
    cargo run -q --release --offline -p meshlint -- \
        --root . --baseline meshlint.baseline "$@"
}

echo "==> cargo clippy --offline --workspace --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

if [[ -n "$JSON_OUT" ]]; then
    mkdir -p "$(dirname "$JSON_OUT")"
    run_meshlint --json >"$JSON_OUT" || true
    echo "meshlint: JSON artifact written to $JSON_OUT"
fi

echo "==> meshlint (determinism & robustness rules, ratcheted)"
run_meshlint

echo "lint: all checks passed"
