#!/usr/bin/env bash
# Static-analysis gate: the clippy lint wall plus the project-specific
# meshlint determinism/robustness rules, ratcheted against the committed
# baseline. Run from anywhere; fully offline.
#
#   ./scripts/lint.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo clippy --offline --workspace --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> meshlint (determinism & robustness rules, ratcheted)"
cargo run -q --release --offline -p meshlint -- --root . --baseline meshlint.baseline

echo "lint: all checks passed"
